package mem

// Cache is a set-associative, LRU, timing-only cache model: it tracks
// tags to classify hits and misses but holds no data (architectural data
// lives in Memory). Writes allocate, modeling a write-back,
// write-allocate cache.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits uint
	// tags[set*ways+way]; valid[..]; lru holds per-set ascending age
	// order (lru[set*ways] is the LRU way index).
	tags  []uint64
	valid []bool
	age   []uint64 // per-line last-access stamp
	stamp uint64

	Hits   uint64
	Misses uint64

	// Delta-clone support (SetBaseline). base is a frozen cache every
	// fork origin shares; delta lists the lines where this (frozen)
	// cache differs from base; journal lists the lines mutated since
	// the last CloneInto restore. A restore from an origin sharing the
	// same base then touches |journal|+|delta| lines instead of the
	// whole tag store — for the L2 that is a few hundred lines versus
	// half a megabyte. nil base disables all of it.
	base    *Cache
	delta   []int32
	journal []int32
	jovf    bool // journal overflowed; next CloneInto copies in full
}

// maxCacheJournal caps the mutation journal: a window that touches more
// lines than this falls back to a flat copy on the next restore.
const maxCacheJournal = 4096

// NewCache creates a cache of sizeBytes with the given associativity and
// line size (both powers of two).
func NewCache(name string, sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("mem: non-positive cache geometry")
	}
	if sizeBytes%(ways*lineBytes) != 0 {
		panic("mem: cache size not divisible by ways*line")
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 || lineBytes&(lineBytes-1) != 0 {
		panic("mem: sets and line size must be powers of two")
	}
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
		age:      make([]uint64, sets*ways),
	}
}

// Access looks up addr, updating LRU state, and reports whether it hit.
// On a miss the line is allocated, evicting the LRU way.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	c.stamp++
	first := set * c.ways
	victim, victimAge := first, c.age[first]
	for w := 0; w < c.ways; w++ {
		i := first + w
		if c.valid[i] && c.tags[i] == tag {
			c.age[i] = c.stamp
			c.record(i)
			c.Hits++
			return true
		}
		if !c.valid[i] {
			victim, victimAge = i, 0
		} else if c.age[i] < victimAge {
			victim, victimAge = i, c.age[i]
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.age[victim] = c.stamp
	c.record(victim)
	return false
}

// record journals a mutated line index for the delta-clone restore.
func (c *Cache) record(i int) {
	if c.base == nil {
		return
	}
	if len(c.journal) < maxCacheJournal {
		c.journal = append(c.journal, int32(i))
	} else {
		c.jovf = true
	}
}

// Accesses returns the total access count.
func (c *Cache) Accesses() uint64 { return c.Hits + c.Misses }

// MissRate returns misses / accesses, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	n := c.Accesses()
	if n == 0 {
		return 0
	}
	return float64(c.Misses) / float64(n)
}

// Clone returns an independent copy of the cache state. The copy opts
// out of the delta-clone machinery: it shares no baseline and journals
// nothing.
func (c *Cache) Clone() *Cache {
	d := *c
	d.tags = append([]uint64(nil), c.tags...)
	d.valid = append([]bool(nil), c.valid...)
	d.age = append([]uint64(nil), c.age...)
	d.base, d.delta, d.journal, d.jovf = nil, nil, nil, false
	return &d
}

// SetBaseline freezes c and registers base as its delta-clone anchor:
// CloneInto from c can then restore a destination that shares the same
// anchor by rewriting only the destination's journaled mutations and
// c's precomputed divergence from the anchor. base must outlive c
// unmodified; c itself must not be accessed after this call.
func (c *Cache) SetBaseline(base *Cache) {
	if len(c.tags) != len(base.tags) {
		return
	}
	c.base = base
	c.delta = c.delta[:0]
	for i := range c.tags {
		if c.tags[i] != base.tags[i] || c.valid[i] != base.valid[i] || c.age[i] != base.age[i] {
			c.delta = append(c.delta, int32(i))
		}
	}
	c.journal, c.jovf = nil, false
}

// CloneInto overwrites d with a deep copy of c, reusing d's tag arrays
// when the geometry matches (the snapshot-arena path; the L2 alone is
// over half a megabyte of tag state, so reuse matters). When c carries
// a baseline (SetBaseline) and d was last restored from an origin with
// the same baseline, only the lines d mutated since plus c's divergence
// from the baseline are rewritten — the flat copy is the fallback.
func (c *Cache) CloneInto(d *Cache) {
	if b := c.base; b != nil && d.base == b && !d.jovf && len(d.tags) == len(c.tags) {
		for _, i := range d.journal {
			d.tags[i], d.valid[i], d.age[i] = b.tags[i], b.valid[i], b.age[i]
		}
		for _, i := range c.delta {
			d.tags[i], d.valid[i], d.age[i] = c.tags[i], c.valid[i], c.age[i]
		}
		d.name, d.sets, d.ways, d.lineBits = c.name, c.sets, c.ways, c.lineBits
		d.stamp, d.Hits, d.Misses = c.stamp, c.Hits, c.Misses
		d.delta = nil
		d.journal = append(d.journal[:0], c.delta...)
		return
	}
	tags, valid, age, journal := d.tags, d.valid, d.age, d.journal
	*d = *c
	d.tags = append(tags[:0], c.tags...)
	d.valid = append(valid[:0], c.valid...)
	d.age = append(age[:0], c.age...)
	// A flat copy leaves d byte-equal to c, so d's divergence from the
	// baseline is exactly c's own delta.
	d.delta = nil
	d.journal = journal[:0]
	d.jovf = false
	if c.base != nil {
		d.journal = append(d.journal, c.delta...)
	}
}

// TLB is a small fully-associative LRU translation buffer, timing-only.
type TLB struct {
	entries  int
	pageBits uint
	pages    []uint64
	valid    []bool
	age      []uint64
	stamp    uint64
	// last is the entry index of the most recent hit. Pages are unique
	// across valid entries (fills happen only on miss), so when the
	// next access maps to the same page the full scan provably lands on
	// the same entry and is skipped. Pure memoization: never compared,
	// cloned as an ordinary field.
	last int

	Hits   uint64
	Misses uint64
}

// NewTLB creates a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("mem: bad TLB geometry")
	}
	pb := uint(0)
	for 1<<pb < pageBytes {
		pb++
	}
	return &TLB{
		entries:  entries,
		pageBits: pb,
		pages:    make([]uint64, entries),
		valid:    make([]bool, entries),
		age:      make([]uint64, entries),
	}
}

// Access looks up the page of addr and reports whether it hit; misses
// fill the LRU entry.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageBits
	t.stamp++
	if l := t.last; t.valid[l] && t.pages[l] == page {
		t.age[l] = t.stamp
		t.Hits++
		return true
	}
	victim, victimAge := 0, t.age[0]
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page {
			t.age[i] = t.stamp
			t.last = i
			t.Hits++
			return true
		}
		if !t.valid[i] {
			victim, victimAge = i, 0
		} else if t.age[i] < victimAge {
			victim, victimAge = i, t.age[i]
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.valid[victim] = true
	t.age[victim] = t.stamp
	t.last = victim
	return false
}

// Clone returns an independent copy of the TLB state.
func (t *TLB) Clone() *TLB {
	d := *t
	d.pages = append([]uint64(nil), t.pages...)
	d.valid = append([]bool(nil), t.valid...)
	d.age = append([]uint64(nil), t.age...)
	return &d
}

// CloneInto overwrites d with a deep copy of t, reusing d's storage.
func (t *TLB) CloneInto(d *TLB) {
	pages, valid, age := d.pages, d.valid, d.age
	*d = *t
	d.pages = append(pages[:0], t.pages...)
	d.valid = append(valid[:0], t.valid...)
	d.age = append(age[:0], t.age...)
}
