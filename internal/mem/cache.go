package mem

// Cache is a set-associative, LRU, timing-only cache model: it tracks
// tags to classify hits and misses but holds no data (architectural data
// lives in Memory). Writes allocate, modeling a write-back,
// write-allocate cache.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits uint
	// tags[set*ways+way]; valid[..]; lru holds per-set ascending age
	// order (lru[set*ways] is the LRU way index).
	tags  []uint64
	valid []bool
	age   []uint64 // per-line last-access stamp
	stamp uint64

	Hits   uint64
	Misses uint64
}

// NewCache creates a cache of sizeBytes with the given associativity and
// line size (both powers of two).
func NewCache(name string, sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("mem: non-positive cache geometry")
	}
	if sizeBytes%(ways*lineBytes) != 0 {
		panic("mem: cache size not divisible by ways*line")
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 || lineBytes&(lineBytes-1) != 0 {
		panic("mem: sets and line size must be powers of two")
	}
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
		age:      make([]uint64, sets*ways),
	}
}

// Access looks up addr, updating LRU state, and reports whether it hit.
// On a miss the line is allocated, evicting the LRU way.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	c.stamp++
	base := set * c.ways
	victim, victimAge := base, c.age[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.age[i] = c.stamp
			c.Hits++
			return true
		}
		if !c.valid[i] {
			victim, victimAge = i, 0
		} else if c.age[i] < victimAge {
			victim, victimAge = i, c.age[i]
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.age[victim] = c.stamp
	return false
}

// Accesses returns the total access count.
func (c *Cache) Accesses() uint64 { return c.Hits + c.Misses }

// MissRate returns misses / accesses, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	n := c.Accesses()
	if n == 0 {
		return 0
	}
	return float64(c.Misses) / float64(n)
}

// Clone returns an independent copy of the cache state.
func (c *Cache) Clone() *Cache {
	d := *c
	d.tags = append([]uint64(nil), c.tags...)
	d.valid = append([]bool(nil), c.valid...)
	d.age = append([]uint64(nil), c.age...)
	return &d
}

// CloneInto overwrites d with a deep copy of c, reusing d's tag arrays
// when the geometry matches (the snapshot-arena path; the L2 alone is
// over half a megabyte of tag state, so reuse matters).
func (c *Cache) CloneInto(d *Cache) {
	tags, valid, age := d.tags, d.valid, d.age
	*d = *c
	d.tags = append(tags[:0], c.tags...)
	d.valid = append(valid[:0], c.valid...)
	d.age = append(age[:0], c.age...)
}

// TLB is a small fully-associative LRU translation buffer, timing-only.
type TLB struct {
	entries  int
	pageBits uint
	pages    []uint64
	valid    []bool
	age      []uint64
	stamp    uint64

	Hits   uint64
	Misses uint64
}

// NewTLB creates a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("mem: bad TLB geometry")
	}
	pb := uint(0)
	for 1<<pb < pageBytes {
		pb++
	}
	return &TLB{
		entries:  entries,
		pageBits: pb,
		pages:    make([]uint64, entries),
		valid:    make([]bool, entries),
		age:      make([]uint64, entries),
	}
}

// Access looks up the page of addr and reports whether it hit; misses
// fill the LRU entry.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageBits
	t.stamp++
	victim, victimAge := 0, t.age[0]
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page {
			t.age[i] = t.stamp
			t.Hits++
			return true
		}
		if !t.valid[i] {
			victim, victimAge = i, 0
		} else if t.age[i] < victimAge {
			victim, victimAge = i, t.age[i]
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.valid[victim] = true
	t.age[victim] = t.stamp
	return false
}

// Clone returns an independent copy of the TLB state.
func (t *TLB) Clone() *TLB {
	d := *t
	d.pages = append([]uint64(nil), t.pages...)
	d.valid = append([]bool(nil), t.valid...)
	d.age = append([]uint64(nil), t.age...)
	return &d
}

// CloneInto overwrites d with a deep copy of t, reusing d's storage.
func (t *TLB) CloneInto(d *TLB) {
	pages, valid, age := d.pages, d.valid, d.age
	*d = *t
	d.pages = append(pages[:0], t.pages...)
	d.valid = append(valid[:0], t.valid...)
	d.age = append(age[:0], t.age...)
}
