package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory(0x1000, 0x100, map[uint64]uint64{0x1008: 7})
	v, err := m.Read(0x1008)
	if err != nil || v != 7 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	if err := m.Write(0x1010, 9); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Read(0x1010)
	if v != 9 {
		t.Fatalf("Read after Write = %d", v)
	}
	// Never-written word reads as zero.
	v, err = m.Read(0x1018)
	if err != nil || v != 0 {
		t.Fatalf("unwritten word = %d, %v", v, err)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(0x1000, 0x100, nil)
	cases := []uint64{0x0ff8, 0x1100, 0x10fc, 0x1001}
	for _, a := range cases {
		if _, err := m.Read(a); err == nil {
			t.Errorf("Read(%#x) should fail", a)
		}
		if err := m.Write(a, 1); err == nil {
			t.Errorf("Write(%#x) should fail", a)
		}
	}
	// Last mapped word is fine.
	if err := m.Write(0x10f8, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCloneIndependence(t *testing.T) {
	m := NewMemory(0x1000, 0x100, nil)
	m.Write(0x1000, 1)
	c := m.Clone()
	c.Write(0x1000, 2)
	v, _ := m.Read(0x1000)
	if v != 1 {
		t.Fatal("clone write leaked into original")
	}
	if !m.Mapped(0x1000) || !c.Mapped(0x1000) {
		t.Fatal("mapping lost in clone")
	}
}

func TestMemoryEqualAndHash(t *testing.T) {
	a := NewMemory(0x1000, 0x100, nil)
	b := NewMemory(0x1000, 0x100, nil)
	a.Write(0x1000, 5)
	b.Write(0x1000, 5)
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Fatal("equal memories should match")
	}
	b.Write(0x1008, 1)
	if a.Equal(b) || a.Hash() == b.Hash() {
		t.Fatal("differing memories should not match")
	}
	// Writing an explicit zero equals never writing.
	b.Write(0x1008, 0)
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Fatal("explicit zero should equal unwritten")
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	c := NewCache("t", 1024, 2, 64) // 8 sets, 2 ways
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) || !c.Access(8) {
		t.Fatal("same line should hit")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 1024, 2, 64) // 8 sets: set = line % 8
	// Three lines mapping to set 0: lines 0, 8, 16 -> addresses 0, 512, 1024.
	c.Access(0)
	c.Access(512)
	c.Access(0)    // make line 0 MRU
	c.Access(1024) // evicts line at 512 (LRU)
	if !c.Access(0) {
		t.Fatal("line 0 should still be resident")
	}
	if c.Access(512) {
		t.Fatal("line 512 should have been evicted")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache("t", 0, 2, 64) },
		func() { NewCache("t", 1000, 2, 64) }, // not divisible
		func() { NewCache("t", 96*2, 2, 96) }, // non-power-of-two line
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTLBBasics(t *testing.T) {
	tl := NewTLB(2, 4096)
	if tl.Access(0) {
		t.Fatal("cold TLB access should miss")
	}
	if !tl.Access(100) {
		t.Fatal("same page should hit")
	}
	tl.Access(4096)     // page 1
	tl.Access(2 * 4096) // page 2, evicts page 0 (LRU)
	if !tl.Access(4096) {
		t.Fatal("page 1 should still be resident")
	}
	if tl.Access(0) {
		t.Fatal("page 0 should have been evicted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	// Cold access: TLB miss + L1 miss + L2 miss + memory.
	lat, hit := h.AccessD(0x10000, false)
	want := cfg.L1DLatency + cfg.TLBMissCycles + cfg.L2Latency + cfg.MemLatency
	if hit || lat != want {
		t.Fatalf("cold access: lat=%d hit=%v, want lat=%d", lat, hit, want)
	}
	// Warm access: L1 hit.
	lat, hit = h.AccessD(0x10000, false)
	if !hit || lat != cfg.L1DLatency {
		t.Fatalf("warm access: lat=%d hit=%v", lat, hit)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	h.AccessD(0x10000, false)
	// Evict from the 32KB 2-way L1 by touching two more lines in the
	// same L1 set (sets=256, so stride 256*64 = 16KB).
	h.AccessD(0x10000+16384, false)
	h.AccessD(0x10000+2*16384, false)
	// 0x10000 now misses L1 but hits the 2MB L2.
	lat, hit := h.AccessD(0x10000, false)
	if hit {
		t.Fatal("expected L1 miss")
	}
	if lat != cfg.L1DLatency+cfg.L2Latency {
		t.Fatalf("L2 hit latency = %d, want %d", lat, cfg.L1DLatency+cfg.L2Latency)
	}
}

func TestHierarchyInstructionPath(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	cold := h.AccessI(0)
	warm := h.AccessI(0)
	if warm >= cold {
		t.Fatalf("warm fetch (%d) should be faster than cold (%d)", warm, cold)
	}
	if warm != cfg.L1ILatency {
		t.Fatalf("warm fetch latency = %d", warm)
	}
	s := h.Stats()
	if s.L1IAccesses != 2 || s.L1IMisses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestHierarchyCloneIndependence(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.AccessD(0x10000, false)
	c := h.Clone()
	// Accessing through the clone must not warm the original.
	c.AccessD(0x20000, false)
	if h.Stats().L1DAccesses != 1 {
		t.Fatal("clone access leaked into original stats")
	}
	// The clone retains the original's warm line.
	if _, hit := c.AccessD(0x10000, false); !hit {
		t.Fatal("clone should retain warmed lines")
	}
}

// Property: cache conserves accesses = hits + misses, and repeated
// access to the same address always hits after the first.
func TestCacheRepeatHitProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewCache("t", 4096, 4, 64)
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) { // immediate re-access must hit
				return false
			}
		}
		return c.Accesses() == uint64(2*len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: memory round-trips arbitrary values at mapped addresses.
func TestMemoryRoundTripProperty(t *testing.T) {
	f := func(off16 uint16, v uint64) bool {
		m := NewMemory(0x10000, 1<<20, nil)
		addr := 0x10000 + uint64(off16)*8
		if err := m.Write(addr, v); err != nil {
			return false
		}
		got, err := m.Read(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayIndependence(t *testing.T) {
	base := NewMemory(0x1000, 0x100, map[uint64]uint64{0x1000: 1, 0x1008: 2})
	ov := base.Overlay()
	// Overlay starts identical to the base.
	if !ov.Equal(base) || ov.Hash() != base.Hash() {
		t.Fatal("fresh overlay should equal its base")
	}
	if v, _ := ov.Read(0x1008); v != 2 {
		t.Fatalf("overlay read-through = %d, want 2", v)
	}
	// Writes through the overlay never reach the base.
	ov.Write(0x1000, 99)
	ov.Write(0x1010, 7)
	if v, _ := base.Read(0x1000); v != 1 {
		t.Fatal("overlay write leaked into base")
	}
	if v, _ := base.Read(0x1010); v != 0 {
		t.Fatal("overlay write to fresh word leaked into base")
	}
	if v, _ := ov.Read(0x1000); v != 99 {
		t.Fatal("overlay lost its own write")
	}
	if ov.Equal(base) || ov.Hash() == base.Hash() {
		t.Fatal("diverged overlay should not equal base")
	}
	// Base writes made before the overlay diverges on an address are
	// visible through it; the overlay's dirty words shadow the rest.
	// (The fault runner never does this — the golden base is immutable
	// while overlays are live — but lookup semantics must still hold.)
	// Rewriting the shadowed word in the overlay back to the base value
	// restores equality.
	ov.Write(0x1000, 1)
	ov.Write(0x1010, 0)
	if !ov.Equal(base) || ov.Hash() != base.Hash() {
		t.Fatal("overlay rewritten to base values should equal base")
	}
}

func TestOverlayCloneMatchesEagerClone(t *testing.T) {
	base := NewMemory(0x1000, 0x1000, map[uint64]uint64{0x1000: 3, 0x1100: 4})
	eager := base.Clone()
	ov := base.Overlay()
	// Apply the same write sequence to the eager clone and the overlay.
	writes := []struct{ a, v uint64 }{
		{0x1000, 10}, {0x1200, 11}, {0x1100, 0}, {0x1000, 3}, {0x1ff8, 5},
	}
	for _, w := range writes {
		if err := eager.Write(w.a, w.v); err != nil {
			t.Fatal(err)
		}
		if err := ov.Write(w.a, w.v); err != nil {
			t.Fatal(err)
		}
	}
	if ov.Hash() != eager.Hash() {
		t.Fatalf("overlay hash %#x != eager clone hash %#x", ov.Hash(), eager.Hash())
	}
	if !ov.Equal(eager) || !eager.Equal(ov) {
		t.Fatal("overlay and eager clone should be Equal (both directions)")
	}
	// Flattening the overlay produces a root memory with the same
	// contents and hash.
	flat := ov.Clone()
	if flat.parent != nil {
		t.Fatal("Clone of an overlay should be a root memory")
	}
	if flat.Hash() != eager.Hash() || !flat.Equal(eager) {
		t.Fatal("flattened overlay should equal eager clone")
	}
}

func TestOverlayReset(t *testing.T) {
	base := NewMemory(0x1000, 0x100, map[uint64]uint64{0x1000: 1})
	ov := base.Overlay()
	ov.Write(0x1000, 2)
	ov.Write(0x1008, 3)
	ov.Reset()
	if !ov.Equal(base) || ov.Hash() != base.Hash() {
		t.Fatal("Reset should restore the overlay to its base")
	}
	if len(ov.words) != 0 {
		t.Fatal("Reset should empty the dirty map")
	}
	if !ov.IsOverlayOf(base) {
		t.Fatal("Reset overlay should still belong to its base")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on a root memory should panic")
		}
	}()
	base.Reset()
}

// Many goroutines each run a private overlay over one shared immutable
// base — the campaign worker regime. Run with -race to check that
// read-through lookups are safe under concurrency.
func TestOverlayConcurrentOverSharedBase(t *testing.T) {
	image := make(map[uint64]uint64)
	for i := uint64(0); i < 512; i++ {
		image[0x10000+i*8] = i * 3
	}
	base := NewMemory(0x10000, 1<<20, image)
	wantHash := base.Hash()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ov := base.Overlay()
			for iter := 0; iter < 4; iter++ {
				for i := uint64(0); i < 512; i++ {
					a := 0x10000 + i*8
					v, err := ov.Read(a)
					if err != nil || (iter == 0 && v != i*3) {
						t.Errorf("g%d read %#x = %d, %v", g, a, v, err)
						return
					}
					ov.Write(a, v+uint64(g)+1)
				}
				ov.Reset()
			}
			if ov.Hash() != wantHash || !ov.Equal(base) {
				t.Errorf("g%d: overlay diverged from base after Reset", g)
			}
		}(g)
	}
	wg.Wait()
	if base.Hash() != wantHash {
		t.Fatal("base hash changed under concurrent overlays")
	}
}

// Property: an overlay and an eager clone given the same random write
// sequence agree on Hash and Equal.
func TestOverlayEquivalenceProperty(t *testing.T) {
	f := func(offs []uint16, vals []uint64) bool {
		base := NewMemory(0x10000, 1<<20, map[uint64]uint64{0x10000: 42})
		eager := base.Clone()
		ov := base.Overlay()
		n := len(offs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a := 0x10000 + uint64(offs[i])*8
			eager.Write(a, vals[i])
			ov.Write(a, vals[i])
		}
		return ov.Hash() == eager.Hash() && ov.Equal(eager) && eager.Equal(ov)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
