package mem

// HierarchyConfig is the Table-2 cache geometry of the paper.
type HierarchyConfig struct {
	LineBytes int

	L1ISizeBytes int
	L1IWays      int
	L1ILatency   int

	L1DSizeBytes int
	L1DWays      int
	L1DLatency   int

	L2SizeBytes int
	L2Ways      int
	L2Latency   int

	MemLatency int

	TLBEntries    int
	PageBytes     int
	TLBMissCycles int
}

// DefaultHierarchyConfig returns the paper's Table-2 parameters:
// 32 KB 2-way L1 I and D at 3 cycles, 2 MB 4-way L2 at 20 cycles,
// 64-entry I/D TLBs.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		LineBytes:     64,
		L1ISizeBytes:  32 << 10,
		L1IWays:       2,
		L1ILatency:    3,
		L1DSizeBytes:  32 << 10,
		L1DWays:       2,
		L1DLatency:    3,
		L2SizeBytes:   2 << 20,
		L2Ways:        4,
		L2Latency:     20,
		MemLatency:    200,
		TLBEntries:    64,
		PageBytes:     8 << 10,
		TLBMissCycles: 30,
	}
}

// Hierarchy is the per-core timing model: private L1 I/D, private L2,
// and I/D TLBs, as in Table 2.
type Hierarchy struct {
	cfg  HierarchyConfig
	l1i  *Cache
	l1d  *Cache
	l2   *Cache
	itlb *TLB
	dtlb *TLB
	// sh folds every access (address and direction) into a running
	// stream tag. Two hierarchies that started equal and carry equal
	// tags have seen the same access sequence and therefore hold equal
	// cache/TLB state — the reconvergence digest compares tags instead
	// of walking tag arrays.
	sh uint64
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		l1i:  NewCache("l1i", cfg.L1ISizeBytes, cfg.L1IWays, cfg.LineBytes),
		l1d:  NewCache("l1d", cfg.L1DSizeBytes, cfg.L1DWays, cfg.LineBytes),
		l2:   NewCache("l2", cfg.L2SizeBytes, cfg.L2Ways, cfg.LineBytes),
		itlb: NewTLB(cfg.TLBEntries, cfg.PageBytes),
		dtlb: NewTLB(cfg.TLBEntries, cfg.PageBytes),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// foldStream mixes one access into the stream tag.
func (h *Hierarchy) foldStream(x uint64) {
	x ^= h.sh
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	h.sh = x
}

// StreamTag returns the access-stream fingerprint.
func (h *Hierarchy) StreamTag() uint64 { return h.sh }

// AccessI returns the latency of an instruction fetch at addr.
func (h *Hierarchy) AccessI(addr uint64) int {
	h.foldStream(addr<<2 | 1)
	lat := h.cfg.L1ILatency
	if !h.itlb.Access(addr) {
		lat += h.cfg.TLBMissCycles
	}
	if h.l1i.Access(addr) {
		return lat
	}
	if h.l2.Access(addr) {
		return lat + h.cfg.L2Latency
	}
	return lat + h.cfg.L2Latency + h.cfg.MemLatency
}

// AccessD returns the latency of a data access at addr and whether it
// hit in the L1 D cache (the condition that avoids a conventional load
// replay).
func (h *Hierarchy) AccessD(addr uint64, write bool) (latency int, l1Hit bool) {
	tag := addr << 2
	if write {
		tag |= 2
	}
	h.foldStream(tag)
	lat := h.cfg.L1DLatency
	if !h.dtlb.Access(addr) {
		lat += h.cfg.TLBMissCycles
	}
	if h.l1d.Access(addr) {
		return lat, true
	}
	if h.l2.Access(addr) {
		return lat + h.cfg.L2Latency, false
	}
	return lat + h.cfg.L2Latency + h.cfg.MemLatency, false
}

// Stats exposes the raw cache/TLB counters.
type HierarchyStats struct {
	L1IAccesses, L1IMisses uint64
	L1DAccesses, L1DMisses uint64
	L2Accesses, L2Misses   uint64
	ITLBMisses, DTLBMisses uint64
}

// Stats returns a snapshot of the access counters.
func (h *Hierarchy) Stats() HierarchyStats {
	return HierarchyStats{
		L1IAccesses: h.l1i.Accesses(), L1IMisses: h.l1i.Misses,
		L1DAccesses: h.l1d.Accesses(), L1DMisses: h.l1d.Misses,
		L2Accesses: h.l2.Accesses(), L2Misses: h.l2.Misses,
		ITLBMisses: h.itlb.Misses, DTLBMisses: h.dtlb.Misses,
	}
}

// SetBaseline freezes h and registers base's L2 as the delta-clone
// anchor for h's L2 (Cache.SetBaseline). Only the L2 is worth
// journaling: its tag store is two orders of magnitude larger than the
// L1s' and sees two orders of magnitude fewer accesses, so a per-run
// restore rewrites a few hundred lines instead of half a megabyte.
func (h *Hierarchy) SetBaseline(base *Hierarchy) {
	h.l2.SetBaseline(base.l2)
}

// Clone returns an independent deep copy of the hierarchy state.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		cfg:  h.cfg,
		l1i:  h.l1i.Clone(),
		l1d:  h.l1d.Clone(),
		l2:   h.l2.Clone(),
		itlb: h.itlb.Clone(),
		dtlb: h.dtlb.Clone(),
		sh:   h.sh,
	}
}

// CloneInto overwrites dst with a deep copy of h, reusing dst's tag
// storage. dst is typically a previous Clone of the same hierarchy.
func (h *Hierarchy) CloneInto(dst *Hierarchy) {
	dst.cfg = h.cfg
	dst.sh = h.sh
	h.l1i.CloneInto(dst.l1i)
	h.l1d.CloneInto(dst.l1d)
	h.l2.CloneInto(dst.l2)
	h.itlb.CloneInto(dst.itlb)
	h.dtlb.CloneInto(dst.dtlb)
}
