// Package mem provides the architectural memory image and the timing
// model of the on-chip memory hierarchy (L1 I/D, unified L2, ITLB/DTLB)
// with the Table-2 geometry of the paper. The caches model timing and
// access counts only; architectural data lives in Memory.
package mem

import "fmt"

// Memory is the flat architectural data memory: a single mapped segment
// of 64-bit words. Accesses outside the segment or unaligned accesses
// return a translation error, which the pipeline turns into the paper's
// "noisy" exception category.
type Memory struct {
	base  uint64
	size  uint64
	words map[uint64]uint64
	// hash is maintained incrementally on every write: the sum of
	// mix(addr, value) over all nonzero words (commutative, so updates
	// are O(1)).
	hash uint64
	// parent makes this memory a copy-on-write overlay: reads fall
	// through to parent for words not in the local dirty map, writes
	// land in the local map only. nil for an ordinary (root) memory.
	// While an overlay is live its parent must not be written — the
	// tandem fault runner guarantees this by never stepping the golden
	// core after Prepare. Parent reads are lock-free, so any number of
	// overlays may run concurrently over one immutable base.
	parent *Memory
}

// NewMemory creates a memory with one mapped segment [base, base+size)
// initialized from image (which must lie inside the segment).
func NewMemory(base, size uint64, image map[uint64]uint64) *Memory {
	m := &Memory{base: base, size: size, words: make(map[uint64]uint64, len(image))}
	for a, v := range image {
		m.words[a] = v
		m.hash += mix(a, v)
	}
	return m
}

// mix hashes one (addr, value) pair; mix(a, 0) is defined as 0 so that
// never-written and explicitly-zeroed words hash identically.
func mix(a, v uint64) uint64 {
	if v == 0 {
		return 0
	}
	x := a*0x9e3779b97f4a7c15 ^ v
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Base returns the segment base address.
func (m *Memory) Base() uint64 { return m.base }

// Size returns the segment size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// Mapped reports whether an 8-byte access at addr is legal.
func (m *Memory) Mapped(addr uint64) bool {
	return addr%8 == 0 && addr >= m.base && addr+8 <= m.base+m.size
}

// lookup returns the effective word at addr, walking the overlay chain
// (the nearest dirty copy wins; a word dirty nowhere reads as zero).
func (m *Memory) lookup(addr uint64) uint64 {
	for cur := m; cur != nil; cur = cur.parent {
		if v, ok := cur.words[addr]; ok {
			return v
		}
	}
	return 0
}

// Read returns the word at addr.
func (m *Memory) Read(addr uint64) (uint64, error) {
	if !m.Mapped(addr) {
		return 0, fmt.Errorf("mem: translation exception reading %#x", addr)
	}
	if m.parent == nil {
		return m.words[addr], nil
	}
	return m.lookup(addr), nil
}

// Write stores v at addr. On an overlay the write shadows the parent's
// word without touching it.
func (m *Memory) Write(addr, v uint64) error {
	if !m.Mapped(addr) {
		return fmt.Errorf("mem: translation exception writing %#x", addr)
	}
	var old uint64
	if m.parent == nil {
		old = m.words[addr]
	} else {
		old = m.lookup(addr)
	}
	m.hash += mix(addr, v) - mix(addr, old)
	m.words[addr] = v
	return nil
}

// Clone returns an independent deep copy (used by the tandem fault
// injection runner to snapshot state). Cloning an overlay flattens the
// chain: the copy is a root memory with the overlay's effective
// contents and hash.
func (m *Memory) Clone() *Memory {
	w := make(map[uint64]uint64, m.Footprint())
	m.flattenInto(w)
	return &Memory{base: m.base, size: m.size, words: w, hash: m.hash}
}

// flattenInto writes the chain's effective contents into w, oldest
// layer first so nearer dirty copies win.
func (m *Memory) flattenInto(w map[uint64]uint64) {
	if m.parent != nil {
		m.parent.flattenInto(w)
	}
	for a, v := range m.words {
		w[a] = v
	}
}

// Footprint returns an upper bound on the number of distinct words the
// chain holds (layers may shadow each other, so the effective count can
// be lower).
func (m *Memory) Footprint() int {
	n := 0
	for cur := m; cur != nil; cur = cur.parent {
		n += len(cur.words)
	}
	return n
}

// Overlay returns a copy-on-write view of m: reads fall through to m,
// writes stay in the overlay's private dirty map, and the incremental
// hash carries over so Hash stays O(1). An overlay snapshot replaces a
// full Clone in the per-injection hot path — cost is one small map
// instead of a copy of the whole image. m must not be written while the
// overlay is in use; m may be read concurrently by any number of
// overlays (each overlay itself is single-goroutine, like Memory).
func (m *Memory) Overlay() *Memory {
	return &Memory{
		base:   m.base,
		size:   m.size,
		words:  make(map[uint64]uint64),
		hash:   m.hash,
		parent: m,
	}
}

// IsOverlayOf reports whether m is an overlay directly on base (the
// snapshot arena uses this to decide between resetting and rebuilding).
func (m *Memory) IsOverlayOf(base *Memory) bool { return m.parent == base }

// Reset discards every overlay write, returning the overlay to its
// parent's exact contents (and hash) without reallocating the dirty
// map. It panics on a root memory.
func (m *Memory) Reset() {
	if m.parent == nil {
		panic("mem: Reset on a non-overlay memory")
	}
	clear(m.words)
	m.hash = m.parent.hash
}

// ResetOnto discards every overlay write and re-points the overlay at a
// new parent, taking the parent's exact contents and hash — Reset plus
// a rebase. The snapshot arena uses it when consecutive snapshots fork
// from different golden checkpoints: the dirty map's capacity is kept
// while the base swaps underneath. It panics on a root memory.
func (m *Memory) ResetOnto(parent *Memory) {
	if m.parent == nil {
		panic("mem: ResetOnto on a non-overlay memory")
	}
	clear(m.words)
	m.parent = parent
	m.base = parent.base
	m.size = parent.size
	m.hash = parent.hash
}

// Overlaid reports whether m is a copy-on-write overlay (of any base).
func (m *Memory) Overlaid() bool { return m.parent != nil }

// Hash returns a 64-bit fingerprint of the memory contents for tandem
// state comparison. It is maintained incrementally, so this is O(1).
func (m *Memory) Hash() uint64 { return m.hash }

// Equal reports whether two memories have identical effective contents
// (treating never-written words as zero), regardless of how either
// side's overlay chain layers them.
func (m *Memory) Equal(o *Memory) bool {
	if m.base != o.base || m.size != o.size {
		return false
	}
	for cur := m; cur != nil; cur = cur.parent {
		for a := range cur.words {
			if m.lookup(a) != o.lookup(a) {
				return false
			}
		}
	}
	for cur := o; cur != nil; cur = cur.parent {
		for a := range cur.words {
			if m.lookup(a) != o.lookup(a) {
				return false
			}
		}
	}
	return true
}
