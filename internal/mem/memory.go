// Package mem provides the architectural memory image and the timing
// model of the on-chip memory hierarchy (L1 I/D, unified L2, ITLB/DTLB)
// with the Table-2 geometry of the paper. The caches model timing and
// access counts only; architectural data lives in Memory.
package mem

import "fmt"

// Memory is the flat architectural data memory: a single mapped segment
// of 64-bit words. Accesses outside the segment or unaligned accesses
// return a translation error, which the pipeline turns into the paper's
// "noisy" exception category.
type Memory struct {
	base  uint64
	size  uint64
	words map[uint64]uint64
	// hash is maintained incrementally on every write: the sum of
	// mix(addr, value) over all nonzero words (commutative, so updates
	// are O(1)).
	hash uint64
}

// NewMemory creates a memory with one mapped segment [base, base+size)
// initialized from image (which must lie inside the segment).
func NewMemory(base, size uint64, image map[uint64]uint64) *Memory {
	m := &Memory{base: base, size: size, words: make(map[uint64]uint64, len(image))}
	for a, v := range image {
		m.words[a] = v
		m.hash += mix(a, v)
	}
	return m
}

// mix hashes one (addr, value) pair; mix(a, 0) is defined as 0 so that
// never-written and explicitly-zeroed words hash identically.
func mix(a, v uint64) uint64 {
	if v == 0 {
		return 0
	}
	x := a*0x9e3779b97f4a7c15 ^ v
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Base returns the segment base address.
func (m *Memory) Base() uint64 { return m.base }

// Size returns the segment size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// Mapped reports whether an 8-byte access at addr is legal.
func (m *Memory) Mapped(addr uint64) bool {
	return addr%8 == 0 && addr >= m.base && addr+8 <= m.base+m.size
}

// Read returns the word at addr.
func (m *Memory) Read(addr uint64) (uint64, error) {
	if !m.Mapped(addr) {
		return 0, fmt.Errorf("mem: translation exception reading %#x", addr)
	}
	return m.words[addr], nil
}

// Write stores v at addr.
func (m *Memory) Write(addr, v uint64) error {
	if !m.Mapped(addr) {
		return fmt.Errorf("mem: translation exception writing %#x", addr)
	}
	m.hash += mix(addr, v) - mix(addr, m.words[addr])
	m.words[addr] = v
	return nil
}

// Clone returns an independent deep copy (used by the tandem fault
// injection runner to snapshot state).
func (m *Memory) Clone() *Memory {
	w := make(map[uint64]uint64, len(m.words))
	for a, v := range m.words {
		w[a] = v
	}
	return &Memory{base: m.base, size: m.size, words: w, hash: m.hash}
}

// Hash returns a 64-bit fingerprint of the memory contents for tandem
// state comparison. It is maintained incrementally, so this is O(1).
func (m *Memory) Hash() uint64 { return m.hash }

// Equal reports whether two memories have identical contents (treating
// never-written words as zero).
func (m *Memory) Equal(o *Memory) bool {
	if m.base != o.base || m.size != o.size {
		return false
	}
	for a, v := range m.words {
		if o.words[a] != v {
			return false
		}
	}
	for a, v := range o.words {
		if m.words[a] != v {
			return false
		}
	}
	return true
}
