package harness

import (
	"fmt"

	"faulthound/internal/core"
	"faulthound/internal/detect"
	"faulthound/internal/fault"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/system"
	"faulthound/internal/workload"
)

// MPScaling runs the shared-memory parallel Ocean across 1..8 cores
// (the paper's Table-2 machine is 8 cores x 2-way SMT) with and without
// FaultHound on every core, reporting barrier-round throughput and the
// detection overhead at scale. This extends the paper's evaluation —
// which reports per-core metrics — to the full machine configuration it
// simulates.
func MPScaling(o Options) (*Table, error) {
	t := &Table{
		ID:    "mp-scaling",
		Title: "Multicore scaling: parallel Ocean (AMOADD barriers), baseline vs FaultHound per core",
		Columns: []string{"cores", "threads", "barrier rounds (base)", "rounds (faulthound)",
			"overhead", "aggregate IPC (base)"},
	}
	cycles := o.MeasureCommits * 8 // a fixed cycle budget scales fairly
	if cycles < 40000 {
		cycles = 40000
	}
	for _, cores := range []int{1, 2, 4, 8} {
		threads := cores * 2
		run := func(withDet bool) (uint64, float64, error) {
			programs := workload.OceanMP(prog.DefaultDataBase, o.Seed, threads)
			var mk func(int) detect.Detector
			if withDet {
				mk = func(int) detect.Detector { return core.New(core.DefaultConfig()) }
			}
			s, err := system.New(system.Config{Cores: cores, Core: pipeline.DefaultConfig(2)}, programs, mk)
			if err != nil {
				return 0, 0, err
			}
			s.Run(cycles)
			gen, err := s.Memory().Read(prog.DefaultDataBase + 16)
			if err != nil {
				return 0, 0, err
			}
			st := s.Stats()
			return gen, float64(st.Committed) / float64(st.Cycles), nil
		}
		o.progress("mp-scaling: %d cores", cores)
		base, ipc, err := run(false)
		if err != nil {
			return nil, err
		}
		det, _, err := run(true)
		if err != nil {
			return nil, err
		}
		ov := "n/a"
		if det > 0 {
			ov = pct(float64(base)/float64(det) - 1)
		}
		t.AddRow(fmt.Sprintf("%d", cores), fmt.Sprintf("%d", threads),
			fmt.Sprintf("%d", base), fmt.Sprintf("%d", det), ov, fmt.Sprintf("%.2f", ipc))
	}
	t.Notes = append(t.Notes,
		"rounds = completed barrier generations in a fixed cycle budget; overhead = base/faulthound - 1")
	return t, nil
}

// MPCoverage runs the paper's multithreaded-benchmark injection
// methodology — faults distributed across all cores of the machine —
// on the shared-memory parallel Ocean, comparing FaultHound coverage
// against the unprotected machine.
func MPCoverage(o Options) (*Table, error) {
	t := &Table{
		ID:      "mp-coverage",
		Title:   "Multicore fault injection: parallel Ocean, faults across all cores",
		Columns: []string{"cores", "masked", "noisy", "sdc", "faulthound coverage"},
	}
	cfg := o.Fault
	for _, cores := range []int{1, 2} {
		threads := cores * 2
		mk := func(withDet bool) func() *system.System {
			return func() *system.System {
				programs := workload.OceanMP(prog.DefaultDataBase, o.Seed, threads)
				var mkDet func(int) detect.Detector
				if withDet {
					mkDet = func(int) detect.Detector { return core.New(core.DefaultConfig()) }
				}
				s, err := system.New(system.Config{Cores: cores, Core: pipeline.DefaultConfig(2)}, programs, mkDet)
				if err != nil {
					panic(err)
				}
				return s
			}
		}
		o.progress("mp-coverage: %d cores (baseline)", cores)
		base, err := fault.RunSystem(mk(false), cfg)
		if err != nil {
			return nil, err
		}
		o.progress("mp-coverage: %d cores (faulthound)", cores)
		det, err := fault.RunSystem(mk(true), cfg)
		if err != nil {
			return nil, err
		}
		m, n, s := base.Classification()
		tot := float64(m + n + s)
		rep := fault.PairCoverage(base, det)
		t.AddRow(fmt.Sprintf("%d", cores),
			pct(float64(m)/tot), pct(float64(n)/tot), pct(float64(s)/tot),
			pct(rep.Coverage()))
	}
	t.Notes = append(t.Notes,
		"the paper injects faults 'in all the cores' for the multithreaded benchmarks; this runs that methodology end to end")
	return t, nil
}
