// Package harness runs the paper's experiments: it builds cores for
// every (benchmark, scheme) pair and regenerates each table and figure
// of the evaluation section (DESIGN.md, experiment index). All runs are
// deterministic in Options.Seed.
package harness

import (
	"fmt"

	"faulthound/internal/campaign"
	"faulthound/internal/detect"
	"faulthound/internal/energy"
	"faulthound/internal/fault"
	"faulthound/internal/pipeline"
	"faulthound/internal/scheme"
	"faulthound/internal/workload"
)

// Scheme identifies one fault-tolerance configuration under test: a
// scheme spec string resolved by the internal/scheme registry. The
// constants below name the plain (all-defaults) schemes of the paper's
// evaluation; parameterized specs like "faulthound?tcam=16" are equally
// valid values.
type Scheme string

// Schemes of the evaluation.
const (
	Baseline     Scheme = "baseline"
	PBFS         Scheme = "pbfs"
	PBFSBiased   Scheme = "pbfs-biased"
	FHBackend    Scheme = "faulthound-backend"
	FaultHound   Scheme = "faulthound"
	SRTIso       Scheme = "srt-iso"
	SRTFull      Scheme = "srt"
	FHBE         Scheme = "fh-be" // alias of FHBackend in Figure 12 naming
	FHBENoLSQ    Scheme = "fh-be-nolsq"
	FHBENo2Level Scheme = "fh-be-no2level"
	FHBENoClust  Scheme = "fh-be-nocluster-no2level"
	FHBEFullRB   Scheme = "fh-be-full-rollback"
)

// Options parameterize an experiment run.
type Options struct {
	// Threads is the SMT context count for timing/energy runs (the
	// paper runs two copies per core).
	Threads int
	// MeasureCommits is the per-thread committed-instruction budget of
	// a timing run.
	MeasureCommits uint64
	// WarmupCycles precede measurement in timing runs.
	WarmupCycles uint64
	// MaxCycles bounds any single run.
	MaxCycles uint64
	// Fault configures injection campaigns (always single-threaded; see
	// DESIGN.md).
	Fault fault.Config
	// DetectorWarmupInstr fast-forwards detector filters over the
	// architectural value stream before timing measurement (steady
	// state, standing in for the paper's long simulations).
	DetectorWarmupInstr uint64
	// SRTCoverage scales SRT-iso (the paper matches FaultHound's
	// coverage; 0.75 is the headline number).
	SRTCoverage float64
	// Seed drives workload data initialization.
	Seed uint64
	// Benchmarks restricts the run (nil = all of Table 1).
	Benchmarks []string
	// Workers sizes the fault-campaign worker pool (<= 0 means
	// GOMAXPROCS). Campaign results are bit-identical for any value.
	Workers int
	// Replicates repeats each fault campaign with incremented seeds and
	// averages (coverage experiments only); 0 or 1 means a single run.
	Replicates int
	// Verbose enables progress lines on stderr.
	Verbose bool
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options {
	return Options{
		Threads:             2,
		MeasureCommits:      20000,
		WarmupCycles:        3000,
		MaxCycles:           20_000_000,
		DetectorWarmupInstr: 1_000_000,
		Fault:               fault.DefaultConfig(),
		SRTCoverage:         0.75,
		Seed:                1,
	}
}

// QuickOptions returns a scaled-down configuration for tests and smoke
// runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Threads = 1
	o.MeasureCommits = 4000
	o.WarmupCycles = 1000
	o.Fault.Injections = 60
	o.Fault.WarmupCycles = 1500
	o.Fault.MaxCyclesPerRun = 20000
	o.DetectorWarmupInstr = 100_000
	o.Fault.DetectorWarmupInstr = 100_000
	return o
}

// benchmarks resolves the benchmark list.
func (o Options) benchmarks() ([]workload.Benchmark, error) {
	if len(o.Benchmarks) == 0 {
		return workload.All(), nil
	}
	var out []workload.Benchmark
	for _, n := range o.Benchmarks {
		b, err := workload.Resolve(n)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// KnownSchemes lists every scheme name the harness accepts, derived
// from the registry in registration order.
func KnownSchemes() []Scheme {
	names := scheme.Names()
	out := make([]Scheme, len(names))
	for i, n := range names {
		out[i] = Scheme(n)
	}
	return out
}

// ValidScheme reports whether s parses as a scheme spec against the
// registry.
func ValidScheme(s Scheme) bool {
	return scheme.Valid(string(s))
}

// SchemeEnv is the host-tunable view the options hand the registry's
// factories (SRT-iso coverage matching).
func (o Options) SchemeEnv() scheme.Env {
	return scheme.Env{SRTCoverage: o.SRTCoverage}
}

// BuildCore constructs a core for (benchmark, scheme) with the given
// thread count. The scheme is a spec string ("faulthound",
// "faulthound?tcam=16,delay=6") resolved by the registry.
func (o Options) BuildCore(bm workload.Benchmark, s Scheme, threads int) (*pipeline.Core, error) {
	sp, err := scheme.Parse(string(s))
	if err != nil {
		return nil, err
	}
	return o.BuildCoreSpec(bm, sp, threads)
}

// BuildCoreSpec is BuildCore over an already-parsed scheme spec — the
// form the campaign engine's cells carry.
func (o Options) BuildCoreSpec(bm workload.Benchmark, sp scheme.Spec, threads int) (*pipeline.Core, error) {
	inst, err := scheme.Build(sp, o.SchemeEnv())
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig(threads)
	if inst.Configure != nil {
		inst.Configure(&cfg)
	}
	var det detect.Detector
	if inst.NewDetector != nil {
		det = inst.NewDetector()
	}
	programs := workload.Programs(bm, threads, o.Seed)
	return pipeline.New(cfg, programs, det)
}

// MakeCore returns a deterministic constructor for fault campaigns
// (single-threaded; see DESIGN.md).
func (o Options) MakeCore(bm workload.Benchmark, s Scheme) func() *pipeline.Core {
	return func() *pipeline.Core {
		c, err := o.BuildCore(bm, s, 1)
		if err != nil {
			panic(err)
		}
		return c
	}
}

// Run is the outcome of one timing measurement: the finished core plus
// the cycle, commit, and detector-action deltas over the measured
// window (excluding warmup).
type Run struct {
	Core          *pipeline.Core
	Cycles        uint64
	Committed     uint64
	DetectorDelta detect.Stats
}

// FPRate returns the false-positive action rate of the measured window:
// detector-initiated replays, rollbacks, and singleton re-executions
// per committed instruction.
func (r Run) FPRate() float64 {
	if r.Committed == 0 {
		return 0
	}
	d := r.DetectorDelta
	return float64(d.Replays+d.Rollbacks+d.Singletons) / float64(r.Committed)
}

// TimingRun measures one (benchmark, scheme) pair: detector fast-
// forward, pipeline warmup, then run to the per-thread commit budget.
func (o Options) TimingRun(bm workload.Benchmark, s Scheme) (Run, error) {
	sp, err := scheme.Parse(string(s))
	if err != nil {
		return Run{}, err
	}
	return o.TimingRunSpec(bm, sp)
}

// TimingRunSpec is TimingRun over an already-parsed scheme spec — the
// form campaign cells and the search evaluator carry.
func (o Options) TimingRunSpec(bm workload.Benchmark, sp scheme.Spec) (Run, error) {
	c, err := o.BuildCoreSpec(bm, sp, o.Threads)
	if err != nil {
		return Run{}, err
	}
	c.WarmDetector(o.DetectorWarmupInstr)
	c.Run(o.WarmupCycles)
	startCycles := c.Cycle()
	startCommits := c.CommittedTotal()
	ds0 := c.DetectorStats()
	target := c.Committed(0) + o.MeasureCommits
	if !c.RunUntilCommits(0, target, o.MaxCycles) {
		return Run{}, fmt.Errorf("harness: %s/%s did not reach %d commits (at %d)",
			bm.Name, sp, target, c.Committed(0))
	}
	ds := c.DetectorStats()
	return Run{
		Core:      c,
		Cycles:    c.Cycle() - startCycles,
		Committed: c.CommittedTotal() - startCommits,
		DetectorDelta: detect.Stats{
			Checks:     ds.Checks - ds0.Checks,
			Triggers:   ds.Triggers - ds0.Triggers,
			Suppressed: ds.Suppressed - ds0.Suppressed,
			Replays:    ds.Replays - ds0.Replays,
			Rollbacks:  ds.Rollbacks - ds0.Rollbacks,
			Singletons: ds.Singletons - ds0.Singletons,
		},
	}, nil
}

// TimingRunner adapts the harness's timing and energy recipes (the
// Figure 9/10 measurement loop) to the campaign execute layer. The
// energy model's TCAM sizing follows the spec's tcam/entries parameter
// when it declares one, so the search's energy objective actually
// varies across table sizes.
func (o Options) TimingRunner() campaign.TimingRunner {
	return func(bench string, sp scheme.Spec) (campaign.TimingMetrics, error) {
		bm, err := workload.Resolve(bench)
		if err != nil {
			return campaign.TimingMetrics{}, err
		}
		run, err := o.TimingRunSpec(bm, sp)
		if err != nil {
			return campaign.TimingMetrics{}, err
		}
		model := energy.Default()
		if sc, ok := scheme.Lookup(sp.Name); ok {
			if v, verr := scheme.ValuesOf(sp); verr == nil {
			sizing:
				for _, name := range []string{"tcam", "entries"} {
					for _, p := range sc.Params {
						if p.Name == name && p.Kind == scheme.Int {
							model.TCAMEntries = v.Int(name)
							break sizing
						}
					}
				}
			}
		}
		e := model.Compute(run.Core.Stats(), run.Core.MemStats(), run.DetectorDelta).Total()
		return campaign.TimingMetrics{Cycles: run.Cycles, Energy: e}, nil
	}
}

// progress emits a progress line when verbose.
func (o Options) progress(format string, args ...interface{}) {
	if o.Verbose {
		fmt.Printf("# "+format+"\n", args...)
	}
}
