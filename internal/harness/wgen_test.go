package harness

import (
	"context"
	"reflect"
	"testing"

	"faulthound/internal/fault"
	"faulthound/internal/wgen"
	"faulthound/internal/workload"
)

// recordStream runs bm fault-free on a single-thread baseline core and
// returns its first n committed thread-0 memory ops.
func recordStream(t *testing.T, o Options, bm workload.Benchmark, n int) *wgen.Stream {
	t.Helper()
	c, err := o.BuildCore(bm, Baseline, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := wgen.NewRecorder(bm.Name, o.Seed, n)
	rec.Attach(c)
	for !rec.Full() && !c.AllHalted() && c.Cycle() < 5_000_000 {
		c.Run(4096)
	}
	if !rec.Full() {
		t.Fatalf("recorded only %d of %d ops", len(rec.Stream().Ops), n)
	}
	return rec.Stream()
}

// replayBenchmark wraps a recorded stream as a campaign benchmark, the
// way cmd/fhsim -replay does.
func replayBenchmark(t *testing.T, s *wgen.Stream) workload.Benchmark {
	t.Helper()
	w, err := wgen.FromStream(s)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Benchmark{
		Name:     "replay",
		Suite:    "Generated",
		Paper:    "replayed stream of " + s.Workload,
		SegBytes: w.SegBytes,
		Build:    w.Build,
	}
}

// TestReplayDifferential is the differential-detector regression test:
// one recorded gen stream replayed under faulthound and pbfs. Both
// schemes run fault campaigns against the byte-identical program, so
// their outcome vectors pair injection-for-injection against one
// baseline campaign, and every vector is deterministic.
func TestReplayDifferential(t *testing.T) {
	o := QuickOptions()
	o.Fault.Injections = 40

	genBm, err := workload.Resolve("gen?stride=64,vlocal=0.7,seg=16k,plant=2")
	if err != nil {
		t.Fatal(err)
	}
	bm := replayBenchmark(t, recordStream(t, o, genBm, 500))

	run := func(s Scheme) *fault.Campaign {
		t.Helper()
		camp, err := fault.Run(o.MakeCore(bm, s), o.Fault)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(camp.Results) != o.Fault.Injections {
			t.Fatalf("%s: %d results, want %d", s, len(camp.Results), o.Fault.Injections)
		}
		return camp
	}
	base := run(Baseline)
	fh := run(FaultHound)
	pb := run(PBFS)

	// One injection-descriptor stream pairs all three campaigns.
	for i := range base.Results {
		if fh.Results[i].Injection != base.Results[i].Injection ||
			pb.Results[i].Injection != base.Results[i].Injection {
			t.Fatalf("injection %d: descriptors differ across schemes", i)
		}
	}

	// The differential signal is reproducible: rerunning a scheme gives
	// the identical outcome vector.
	fh2 := run(FaultHound)
	if !reflect.DeepEqual(fh.Results, fh2.Results) {
		t.Fatal("faulthound outcome vector is not deterministic")
	}

	// Pairing produces sane coverage for both schemes over the shared
	// stream.
	diff := 0
	for i := range fh.Results {
		if fh.Results[i].Outcome != pb.Results[i].Outcome || fh.Results[i].Detected != pb.Results[i].Detected {
			diff++
		}
	}
	t.Logf("faulthound vs pbfs: %d of %d injections differ", diff, len(fh.Results))
	for _, det := range []*fault.Campaign{fh, pb} {
		rep := fault.PairCoverage(base, det)
		if cov := rep.Coverage(); cov < 0 || cov > 1 {
			t.Fatalf("coverage %v outside [0, 1]", cov)
		}
		if rep.SDCBase > len(base.Results) {
			t.Fatalf("SDC base %d exceeds campaign size", rep.SDCBase)
		}
	}
}

// TestGeneratedWorkloadWorkerDeterminism is the acceptance criterion
// for generated workloads in campaigns: the same spec string produces
// bit-identical campaign results for any -workers setting.
func TestGeneratedWorkloadWorkerDeterminism(t *testing.T) {
	o := QuickOptions()
	o.Fault.Injections = 40
	bm, err := workload.Resolve("gen?stride=64,seg=16k,plant=2")
	if err != nil {
		t.Fatal(err)
	}
	mk := o.MakeCore(bm, FaultHound)
	serial, err := fault.RunParallel(context.Background(), mk, o.Fault, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fault.RunParallel(context.Background(), mk, o.Fault, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Results, par.Results) {
		t.Fatal("worker count changed generated-workload campaign results")
	}
}
