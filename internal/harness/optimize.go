package harness

import (
	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/search"
)

// NewEvaluator builds the execute-layer evaluator for these options:
// core construction through the registry, the options' fault config
// and worker pool, and the Figure 9/10 timing/energy recipes for the
// overhead objectives. prepared may be nil (no cross-run golden
// sharing).
func (o Options) NewEvaluator(prepared *fault.PreparedCache, progress func(done, total int)) *campaign.Evaluator {
	return &campaign.Evaluator{
		Factory:  o.CampaignFactory(),
		Fault:    o.Fault,
		Workers:  o.Workers,
		Timing:   o.TimingRunner(),
		Prepared: prepared,
		Progress: progress,
	}
}

// NewSearchEval adapts a campaign evaluator to the score layer's
// Evaluate signature (see search.CampaignEval).
func NewSearchEval(ev *campaign.Evaluator, benches []string) search.Evaluate {
	return search.CampaignEval(ev, benches)
}
