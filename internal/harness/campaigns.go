package harness

import (
	"context"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/pipeline"
	"faulthound/internal/scheme"
	"faulthound/internal/workload"
)

// This file bridges the harness to the campaign engine: figure
// generation and standalone campaign running (cmd/fhcampaign) share
// one execution path — campaign.Engine over fault.Prepared — and the
// coverage/FP tables below consume campaign summaries.

// CampaignFactory adapts this Options' core construction to the
// campaign engine: scheme specs resolve through the scheme registry,
// cores build exactly as fault campaigns always have (single-threaded;
// see DESIGN.md). Resolution errors (unknown scheme, bad parameter)
// surface here, before any injection runs.
func (o Options) CampaignFactory() campaign.CoreFactory {
	return func(bench string, sp scheme.Spec) (func() *pipeline.Core, error) {
		bm, err := workload.Resolve(bench)
		if err != nil {
			return nil, err
		}
		if _, err := scheme.Build(sp, o.SchemeEnv()); err != nil {
			return nil, err
		}
		return func() *pipeline.Core {
			c, err := o.BuildCoreSpec(bm, sp, 1)
			if err != nil {
				panic(err)
			}
			return c
		}, nil
	}
}

// CampaignSpec builds a campaign spec from this Options: its fault
// config, seed, and worker count, over the given benchmarks and
// schemes (baseline is implicit).
func (o Options) CampaignSpec(benchmarks []string, schemes []Scheme) campaign.Spec {
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = string(s)
	}
	return campaign.Spec{
		Benchmarks: benchmarks,
		Schemes:    names,
		Workers:    o.Workers,
		Fault:      o.Fault,
	}
}

// RunCampaign executes a spec in memory (no artifact bundle) with this
// Options' core factory, reporting per-cell progress when verbose.
func (o Options) RunCampaign(spec campaign.Spec) (*campaign.Outcome, error) {
	eng := &campaign.Engine{
		Spec:    spec,
		Factory: o.CampaignFactory(),
		OnCell:  func(c campaign.Cell) { o.progress("campaign: %s", c) },
	}
	return eng.Run(context.Background(), "", false)
}

// CoverageTableFromSummary builds a per-benchmark coverage table (the
// Figure-8a shape) from a campaign summary: one row per benchmark, one
// column per scheme, plus the overall mean.
func CoverageTableFromSummary(id, title string, sum *campaign.Summary, benchmarks []string, schemes []Scheme) *Table {
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, string(s))
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	sums := make([]float64, len(schemes))
	for _, bm := range benchmarks {
		row := []string{bm}
		for i, s := range schemes {
			cov, _ := sum.Coverage(bm, string(s))
			row = append(row, pct(cov))
			sums[i] += cov
		}
		t.AddRow(row...)
	}
	mean := []string{"mean(all)"}
	for _, s := range sums {
		mean = append(mean, pct(s/float64(len(benchmarks))))
	}
	t.AddRow(mean...)
	return t
}

// FPTableFromSummary builds a per-benchmark false-positive table from
// a campaign summary's fault-free golden-run FP rates — the campaign
// counterpart of the Figure-8b timing-run measurement.
func FPTableFromSummary(id, title string, sum *campaign.Summary, benchmarks []string, schemes []Scheme) *Table {
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, string(s))
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	sums := make([]float64, len(schemes))
	for _, bm := range benchmarks {
		row := []string{bm}
		for i, s := range schemes {
			fp, _ := sum.FPRate(bm, string(s))
			row = append(row, pct(fp))
			sums[i] += fp
		}
		t.AddRow(row...)
	}
	mean := []string{"mean(all)"}
	for _, s := range sums {
		mean = append(mean, pct(s/float64(len(benchmarks))))
	}
	t.AddRow(mean...)
	return t
}

// runPaired is the shared campaign path for experiments that need
// paired coverage but custom core configs (the extension sweeps):
// Prepare once, fan injections across Options.Workers.
func (o Options) runPaired(mk func() *pipeline.Core, cfg fault.Config) (*fault.Campaign, error) {
	return fault.RunParallel(context.Background(), mk, cfg, o.Workers, nil)
}
