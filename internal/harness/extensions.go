package harness

import (
	"faulthound/internal/core"
	"faulthound/internal/detect"
	"faulthound/internal/energy"
	"faulthound/internal/fault"
	"faulthound/internal/filter"
	"faulthound/internal/pipeline"
	"faulthound/internal/workload"
)

// The extension experiments reproduce the claims the paper makes in
// passing rather than in a numbered figure:
//
//   - Section 5.2: "leslie's low coverage across the board improves
//     with larger filters (not shown)" — ExtFilterSize.
//   - Section 3: "changing from two-bit to three-bit state machine
//     reduces the coverage from 80% to 60%" — ExtStateDepth.
//   - Section 1: full-redundancy SRT costs "13% and 56%" in
//     performance and energy — ExtFullSRT.

// customFaultHound builds a core with a customized FaultHound config.
func (o Options) customFaultHound(bm workload.Benchmark, cfg core.Config, threads int) (*pipeline.Core, error) {
	pcfg := pipeline.DefaultConfig(threads)
	programs := workload.Programs(bm, threads, o.Seed)
	return pipeline.New(pcfg, programs, core.New(cfg))
}

// ExtFilterSize sweeps the TCAM entry count on leslie3d (the paper's
// low-coverage outlier) and a locality-friendly reference benchmark.
func ExtFilterSize(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-filters",
		Title:   "TCAM size sensitivity: SDC coverage (Section 5.2: leslie improves with larger filters)",
		Columns: []string{"benchmark", "8 entries", "16", "32 (paper)", "64"},
	}
	sizes := []int{8, 16, 32, 64}
	for _, name := range []string{"leslie3d", "bzip2"} {
		bm, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		base, err := o.runPaired(o.MakeCore(bm, Baseline), o.Fault)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, n := range sizes {
			o.progress("ext-filters: %s/%d", name, n)
			cfg := core.DefaultConfig()
			cfg.Addr.Entries = n
			cfg.Value.Entries = n
			det, err := o.runPaired(func() *pipeline.Core {
				c, e := o.customFaultHound(bm, cfg, 1)
				if e != nil {
					panic(e)
				}
				return c
			}, o.Fault)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(fault.PairCoverage(base, det).Coverage()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: coverage grows with filter count, most sharply for leslie3d")
	return t, nil
}

// ExtStateDepth compares the biased two-bit machine against the
// three-deep variant the paper rejects for its coverage cost.
func ExtStateDepth(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-depth",
		Title:   "Biased state machine depth: coverage and false positives (Section 3: 2-bit vs 3-bit)",
		Columns: []string{"benchmark", "cov depth-2", "cov depth-3", "fp depth-2", "fp depth-3"},
	}
	policies := []filter.Policy{filter.Biased2, filter.Biased3}
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	if len(bms) > 3 {
		bms = bms[:3]
	}
	for _, bm := range bms {
		base, err := o.runPaired(o.MakeCore(bm, Baseline), o.Fault)
		if err != nil {
			return nil, err
		}
		row := []string{bm.Name}
		var covs, fps []string
		for _, pol := range policies {
			o.progress("ext-depth: %s/%v", bm.Name, pol)
			cfg := core.DefaultConfig()
			cfg.Addr.Policy = pol
			cfg.Value.Policy = pol
			det, err := o.runPaired(func() *pipeline.Core {
				c, e := o.customFaultHound(bm, cfg, 1)
				if e != nil {
					panic(e)
				}
				return c
			}, o.Fault)
			if err != nil {
				return nil, err
			}
			covs = append(covs, pct(fault.PairCoverage(base, det).Coverage()))

			// False positives from a fault-free run with the same config.
			c, e := o.customFaultHound(bm, cfg, 1)
			if e != nil {
				return nil, e
			}
			c.WarmDetector(o.DetectorWarmupInstr)
			c.Run(o.WarmupCycles)
			ds0 := c.DetectorStats()
			n0 := c.CommittedTotal()
			c.RunUntilCommits(0, c.Committed(0)+o.MeasureCommits, o.MaxCycles)
			ds := c.DetectorStats()
			denom := float64(c.CommittedTotal() - n0)
			fps = append(fps, pct(float64(ds.Replays+ds.Rollbacks+ds.Singletons-
				ds0.Replays-ds0.Rollbacks-ds0.Singletons)/denom))
		}
		row = append(row, covs...)
		row = append(row, fps...)
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: deeper bias trades coverage (80% -> 60%) for fewer false positives")
	return t, nil
}

// ExtFullSRT reproduces the introduction's full-redundancy numbers:
// "full-redundancy schemes incur high performance and energy overheads
// (our simulations show 13% and 56%, respectively)".
func ExtFullSRT(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-srt",
		Title:   "Full-redundancy SRT overheads (Section 1: ~13% performance, ~56% energy)",
		Columns: []string{"benchmark", "perf overhead", "energy overhead"},
	}
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	model := energy.Default()
	var perfSum, enSum float64
	for _, bm := range bms {
		o.progress("ext-srt: %s", bm.Name)
		base, err := o.TimingRun(bm, Baseline)
		if err != nil {
			return nil, err
		}
		srt, err := o.TimingRun(bm, SRTFull)
		if err != nil {
			return nil, err
		}
		perf := float64(srt.Cycles)/float64(base.Cycles) - 1
		baseE := model.Compute(base.Core.Stats(), base.Core.MemStats(), detect.Stats{}).Total()
		srtE := model.Compute(srt.Core.Stats(), srt.Core.MemStats(), detect.Stats{}).Total()
		en := energy.Overhead(srtE, baseE)
		t.AddRow(bm.Name, pct(perf), pct(en))
		perfSum += perf
		enSum += en
	}
	n := float64(len(bms))
	t.AddRow("mean(all)", pct(perfSum/n), pct(enSum/n))
	t.Notes = append(t.Notes, "redundant copies consume issue/FU bandwidth and energy; energy cannot be hidden")
	return t, nil
}

// Extensions runs all extension experiments.
func Extensions(o Options) ([]*Table, error) {
	var out []*Table
	for _, f := range []func(Options) (*Table, error){ExtFilterSize, ExtStateDepth, ExtFullSRT} {
		t, err := f(o)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
