package harness

import (
	"strings"
	"testing"

	"faulthound/internal/scheme"
)

// quick returns small options over a 3-benchmark subset spanning the
// workload classes.
func quick() Options {
	o := QuickOptions()
	o.Benchmarks = []string{"bzip2", "mcf", "gamess"}
	return o
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRowf("r", "%.1f", 3.25)
	out := tb.Render()
	for _, want := range []string{"== x: T ==", "a", "bb", "3.2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	// CSV escaping.
	tb2 := &Table{Columns: []string{`a,b`}}
	tb2.AddRow(`x"y`)
	if !strings.Contains(tb2.CSV(), `"a,b"`) || !strings.Contains(tb2.CSV(), `"x""y"`) {
		t.Fatalf("csv escaping wrong: %q", tb2.CSV())
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 14 {
		t.Fatalf("table1 rows = %d", len(t1.Rows))
	}
	t2 := Table2()
	if len(t2.Rows) < 10 {
		t.Fatalf("table2 rows = %d", len(t2.Rows))
	}
}

func TestFig6Quick(t *testing.T) {
	o := quick()
	tb, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 64 {
		t.Fatalf("fig6 should have 64 bit rows, got %d", len(tb.Rows))
	}
	// Most bit positions must change rarely (the value-locality premise).
	low := 0
	for _, r := range tb.Rows {
		if strings.HasPrefix(r[1], "0.0") {
			low++
		}
	}
	if low < 32 {
		t.Errorf("only %d/64 load-addr bits are near-zero-change; value locality premise broken", low)
	}
}

func TestFig7Quick(t *testing.T) {
	o := quick()
	tb, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	// 3 benchmarks + suite means + overall mean.
	if len(tb.Rows) < 4 {
		t.Fatalf("fig7 rows = %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "mean(all)" {
		t.Fatalf("last row should be the overall mean, got %q", last[0])
	}
}

func TestFig8Quick(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"bzip2"}
	a, err := Fig8a(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 { // benchmark + mean
		t.Fatalf("fig8a rows = %d", len(a.Rows))
	}
	b, err := Fig8b(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Columns) != 1+4 {
		t.Fatalf("fig8b columns = %d", len(b.Columns))
	}
}

func TestFig9And10Quick(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"bzip2"}
	p, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Columns) != 1+5 {
		t.Fatalf("fig9 columns = %d", len(p.Columns))
	}
	e, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Columns) != 1+3 {
		t.Fatalf("fig10 columns = %d", len(e.Columns))
	}
}

func TestFig11And12Quick(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"bzip2"}
	tb, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Columns) != 1+6 {
		t.Fatalf("fig11 columns = %d", len(tb.Columns))
	}
	ts, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("fig12 should produce 3 panels, got %d", len(ts))
	}
}

func TestUnknownBenchmarkError(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"nope"}
	if _, err := Fig6(o); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestExtensionsQuick(t *testing.T) {
	o := QuickOptions()
	o.Fault.Injections = 40
	o.Benchmarks = []string{"bzip2"}

	fs, err := ExtFilterSize(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Rows) != 2 || len(fs.Columns) != 5 {
		t.Fatalf("ext-filters shape: %dx%d", len(fs.Rows), len(fs.Columns))
	}

	d, err := ExtStateDepth(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Columns) != 5 {
		t.Fatalf("ext-depth columns: %d", len(d.Columns))
	}

	s, err := ExtFullSRT(o)
	if err != nil {
		t.Fatal(err)
	}
	last := s.Rows[len(s.Rows)-1]
	if last[0] != "mean(all)" {
		t.Fatalf("ext-srt last row: %v", last)
	}
}

func TestRunFPRate(t *testing.T) {
	var r Run
	if r.FPRate() != 0 {
		t.Fatal("empty run should have zero FP rate")
	}
	r.Committed = 100
	r.DetectorDelta.Replays = 3
	r.DetectorDelta.Rollbacks = 1
	r.DetectorDelta.Singletons = 1
	if got := r.FPRate(); got != 0.05 {
		t.Fatalf("FPRate = %v, want 0.05", got)
	}
}

func TestSchemeDetectors(t *testing.T) {
	// Every non-baseline scheme resolves to a detector through the
	// registry; SRT schemes and baseline do not.
	o := DefaultOptions()
	withDet := []Scheme{PBFS, PBFSBiased, FHBackend, FaultHound, FHBENoLSQ, FHBENo2Level, FHBENoClust, FHBEFullRB}
	for _, s := range withDet {
		sp, err := scheme.Parse(string(s))
		if err != nil {
			t.Errorf("scheme %s does not parse: %v", s, err)
			continue
		}
		inst, err := scheme.Build(sp, o.SchemeEnv())
		if err != nil {
			t.Errorf("scheme %s does not build: %v", s, err)
			continue
		}
		if inst.NewDetector == nil || inst.NewDetector() == nil {
			t.Errorf("scheme %s has no detector", s)
		}
	}
	for _, s := range []Scheme{Baseline, SRTIso, SRTFull} {
		inst, err := scheme.Build(scheme.Spec{Name: string(s)}, o.SchemeEnv())
		if err != nil {
			t.Errorf("scheme %s does not build: %v", s, err)
			continue
		}
		if inst.NewDetector != nil {
			t.Errorf("scheme %s should have no detector", s)
		}
	}
}

func TestTableJSON(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a"}, Notes: []string{"n"}}
	tb.AddRow("1")
	j := tb.JSON()
	for _, want := range []string{`"id": "x"`, `"columns"`, `"1"`, `"n"`} {
		if !strings.Contains(j, want) {
			t.Fatalf("JSON missing %q:\n%s", want, j)
		}
	}
}

func TestMPScalingQuick(t *testing.T) {
	o := QuickOptions()
	o.MeasureCommits = 12000
	tb, err := MPScaling(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("mp-scaling rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "1" || tb.Rows[3][0] != "8" {
		t.Fatalf("core counts wrong: %v", tb.Rows)
	}
}

func TestCharacterizeQuick(t *testing.T) {
	o := quick()
	tb, err := Characterize(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 || len(tb.Columns) != 9 {
		t.Fatalf("workloads table shape: %dx%d", len(tb.Rows), len(tb.Columns))
	}
}

func TestValidScheme(t *testing.T) {
	for _, s := range KnownSchemes() {
		if !ValidScheme(s) {
			t.Errorf("%s should be valid", s)
		}
	}
	if ValidScheme("bogus") {
		t.Error("bogus scheme accepted")
	}
}
