package harness

import (
	"fmt"

	"faulthound/internal/campaign"
	"faulthound/internal/detect"
	"faulthound/internal/energy"
	"faulthound/internal/fault"
	"faulthound/internal/workload"
)

// Fig6 reproduces Figure 6: the percentage of values differing from the
// same instruction's previous value, per bit position, for load
// addresses, store addresses, and store values, over all benchmarks
// combined.
func Fig6(o Options) (*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	type key struct {
		kind detect.Kind
		pc   uint64
	}
	var changes [3][64]uint64
	var counts [3]uint64

	for _, bm := range bms {
		o.progress("fig6: %s", bm.Name)
		c, err := o.BuildCore(bm, Baseline, 1)
		if err != nil {
			return nil, err
		}
		prev := make(map[key]uint64)
		c.SetProbe(func(ev detect.Event) {
			k := key{ev.Kind, ev.PC}
			if old, ok := prev[k]; ok {
				diff := old ^ ev.Value
				for b := 0; b < 64; b++ {
					if diff>>uint(b)&1 == 1 {
						changes[ev.Kind][b]++
					}
				}
				counts[ev.Kind]++
			}
			prev[k] = ev.Value
		})
		c.Run(o.WarmupCycles)
		c.RunUntilCommits(0, c.Committed(0)+o.MeasureCommits, o.MaxCycles)
	}

	t := &Table{
		ID:      "fig6",
		Title:   "Percent change per bit position (all benchmarks combined, log-scale in the paper)",
		Columns: []string{"bit", "load-addr %", "store-addr %", "store-value %"},
	}
	rate := func(k detect.Kind, b int) float64 {
		if counts[k] == 0 {
			return 0
		}
		return float64(changes[k][b]) / float64(counts[k]) * 100
	}
	for b := 0; b < 64; b++ {
		t.AddRow(fmt.Sprintf("%d", b),
			fmt.Sprintf("%.4f", rate(detect.LoadAddr, b)),
			fmt.Sprintf("%.4f", rate(detect.StoreAddr, b)),
			fmt.Sprintf("%.4f", rate(detect.StoreValue, b)))
	}
	// Mean changed bits per write (paper: ~3 of 64).
	var meanBits [3]float64
	for k := 0; k < 3; k++ {
		var s uint64
		for b := 0; b < 64; b++ {
			s += changes[k][b]
		}
		if counts[k] > 0 {
			meanBits[k] = float64(s) / float64(counts[k])
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"mean changed bits per value: load-addr %.2f, store-addr %.2f, store-value %.2f (paper: ~3/64 overall)",
		meanBits[0], meanBits[1], meanBits[2]))
	return t, nil
}

// Fig7 reproduces Figure 7: masked / noisy / SDC fractions of injected
// faults per benchmark, with suite means and the overall mean.
func Fig7(o Options) (*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7",
		Title:   "Fault characterization: fraction of injected faults",
		Columns: []string{"benchmark", "masked", "noisy", "sdc"},
	}
	names := make([]string, len(bms))
	for i, bm := range bms {
		names[i] = bm.Name
	}
	// One baseline-only campaign over every benchmark — the same
	// engine (and worker pool) cmd/fhcampaign uses.
	out, err := o.RunCampaign(o.CampaignSpec(names, nil))
	if err != nil {
		return nil, err
	}
	suiteAgg := map[string][]([3]float64){}
	var all [][3]float64
	order := []string{}
	for _, bm := range bms {
		cell := out.Summary.Cell(bm.Name, campaign.BaselineScheme)
		if cell == nil {
			return nil, fmt.Errorf("harness: fig7 campaign missing cell %s", bm.Name)
		}
		m, n, s := cell.Masked, cell.Noisy, cell.SDC
		tot := float64(m + n + s)
		fr := [3]float64{float64(m) / tot, float64(n) / tot, float64(s) / tot}
		t.AddRow(bm.Name, pct(fr[0]), pct(fr[1]), pct(fr[2]))
		if _, ok := suiteAgg[bm.Suite]; !ok {
			order = append(order, bm.Suite)
		}
		suiteAgg[bm.Suite] = append(suiteAgg[bm.Suite], fr)
		all = append(all, fr)
	}
	mean3 := func(xs [][3]float64) [3]float64 {
		var m [3]float64
		for _, x := range xs {
			for i := range m {
				m[i] += x[i]
			}
		}
		for i := range m {
			m[i] /= float64(len(xs))
		}
		return m
	}
	for _, s := range order {
		m := mean3(suiteAgg[s])
		t.AddRow("mean("+s+")", pct(m[0]), pct(m[1]), pct(m[2]))
	}
	m := mean3(all)
	t.AddRow("mean(all)", pct(m[0]), pct(m[1]), pct(m[2]))
	t.Notes = append(t.Notes, "paper: ~85% masked, ~5% noisy, remainder SDC")
	return t, nil
}

// fig8Schemes are the detection schemes of Figure 8.
var fig8Schemes = []Scheme{PBFS, PBFSBiased, FHBackend, FaultHound}

// Fig8a reproduces Figure 8(a): SDC coverage per benchmark for PBFS,
// PBFS-biased, FaultHound-backend, and FaultHound.
func Fig8a(o Options) (*Table, error) {
	return coverageTable(o, "fig8a",
		"SDC coverage (fraction of would-be-SDC faults corrected or detected)",
		fig8Schemes)
}

// coverageTable runs paired campaigns for the given schemes through
// the campaign engine and builds the table from its summaries.
func coverageTable(o Options, id, title string, schemes []Scheme) (*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(bms))
	for i, bm := range bms {
		names[i] = bm.Name
	}
	reps := o.Replicates
	if reps < 1 {
		reps = 1
	}
	// covs[bench][scheme] accumulates coverage over replicates.
	covs := make(map[string][]float64, len(names))
	for _, bm := range names {
		covs[bm] = make([]float64, len(schemes))
	}
	for r := 0; r < reps; r++ {
		spec := o.CampaignSpec(names, schemes)
		spec.Fault.Seed += uint64(r) * 7919
		o.progress("%s: campaign rep %d (%d cells)", id, r, len(spec.Cells()))
		out, err := o.RunCampaign(spec)
		if err != nil {
			return nil, err
		}
		for _, bm := range names {
			for i, s := range schemes {
				c, ok := out.Summary.Coverage(bm, string(s))
				if !ok {
					return nil, fmt.Errorf("harness: %s campaign missing cell %s/%s", id, bm, s)
				}
				covs[bm][i] += c
			}
		}
	}
	avg := &campaign.Summary{Injections: o.Fault.Injections}
	for _, bm := range names {
		for i, s := range schemes {
			avg.Cells = append(avg.Cells, campaign.CellSummary{
				Bench:  bm,
				Scheme: string(s),
				Coverage: &campaign.CoverageSummary{
					Coverage: covs[bm][i] / float64(reps),
				},
			})
		}
	}
	t := CoverageTableFromSummary(id, title, avg, names, schemes)
	if reps > 1 {
		t.Notes = append(t.Notes, fmt.Sprintf("each cell averages %d campaigns with distinct seeds", reps))
	}
	t.Notes = append(t.Notes, "paper means: PBFS ~30%, PBFS-biased ~75-80%, FaultHound ~75%")
	return t, nil
}

// Fig8b reproduces Figure 8(b): false-positive rates per benchmark (as
// a fraction of committed instructions) in fault-free runs.
func Fig8b(o Options) (*Table, error) {
	return fpTable(o, "fig8b", "False-positive rate (fraction of instructions triggering recovery, fault-free run)", fig8Schemes)
}

func fpTable(o Options, id, title string, schemes []Scheme) (*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, string(s))
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	sums := make([]float64, len(schemes))
	n := 0
	for _, bm := range bms {
		row := []string{bm.Name}
		for i, s := range schemes {
			o.progress("%s: %s/%s", id, bm.Name, s)
			run, err := o.TimingRun(bm, s)
			if err != nil {
				return nil, err
			}
			r := run.FPRate()
			row = append(row, pct(r))
			sums[i] += r
		}
		n++
		t.AddRow(row...)
	}
	mean := []string{"mean(all)"}
	for _, s := range sums {
		mean = append(mean, pct(s/float64(n)))
	}
	t.AddRow(mean...)
	t.Notes = append(t.Notes, "paper means: PBFS ~0%, PBFS-biased ~8%, FaultHound ~3%")
	return t, nil
}

// fig9Schemes are the performance-comparison schemes of Figure 9.
var fig9Schemes = []Scheme{PBFS, PBFSBiased, FHBackend, FaultHound, SRTIso}

// Fig9 reproduces Figure 9: performance degradation over the
// no-fault-tolerance baseline (log-scale in the paper).
func Fig9(o Options) (*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	cols := []string{"benchmark"}
	for _, s := range fig9Schemes {
		cols = append(cols, string(s))
	}
	t := &Table{ID: "fig9", Title: "Performance degradation vs baseline", Columns: cols}
	sums := make([]float64, len(fig9Schemes))
	n := 0
	for _, bm := range bms {
		o.progress("fig9: %s", bm.Name)
		base, err := o.TimingRun(bm, Baseline)
		if err != nil {
			return nil, err
		}
		row := []string{bm.Name}
		for i, s := range fig9Schemes {
			run, err := o.TimingRun(bm, s)
			if err != nil {
				return nil, err
			}
			d := float64(run.Cycles)/float64(base.Cycles) - 1
			row = append(row, pct(d))
			sums[i] += d
		}
		n++
		t.AddRow(row...)
	}
	mean := []string{"mean(all)"}
	for _, s := range sums {
		mean = append(mean, pct(s/float64(n)))
	}
	t.AddRow(mean...)
	t.Notes = append(t.Notes,
		"paper: PBFS ~1%, PBFS-biased ~97% (full rollbacks), FaultHound ~10%, SRT-iso slightly above FaultHound")
	return t, nil
}

// fig10Schemes are the energy-comparison schemes of Figure 10.
var fig10Schemes = []Scheme{FHBackend, FaultHound, SRTIso}

// Fig10 reproduces Figure 10: energy overhead over the baseline.
func Fig10(o Options) (*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	model := energy.Default()
	cols := []string{"benchmark"}
	for _, s := range fig10Schemes {
		cols = append(cols, string(s))
	}
	t := &Table{ID: "fig10", Title: "Energy overhead vs baseline", Columns: cols}
	sums := make([]float64, len(fig10Schemes))
	n := 0
	for _, bm := range bms {
		o.progress("fig10: %s", bm.Name)
		base, err := o.TimingRun(bm, Baseline)
		if err != nil {
			return nil, err
		}
		baseE := model.Compute(base.Core.Stats(), base.Core.MemStats(), detect.Stats{}).Total()
		row := []string{bm.Name}
		for i, s := range fig10Schemes {
			run, err := o.TimingRun(bm, s)
			if err != nil {
				return nil, err
			}
			e := model.Compute(run.Core.Stats(), run.Core.MemStats(), run.DetectorDelta).Total()
			ov := energy.Overhead(e, baseE)
			row = append(row, pct(ov))
			sums[i] += ov
		}
		n++
		t.AddRow(row...)
	}
	mean := []string{"mean(all)"}
	for _, s := range sums {
		mean = append(mean, pct(s/float64(n)))
	}
	t.AddRow(mean...)
	t.Notes = append(t.Notes,
		"paper: FaultHound-backend ~10%, FaultHound ~25%, SRT-iso high (extra copies cannot be hidden)")
	return t, nil
}

// Fig11 reproduces Figure 11: the breakdown of would-be-SDC faults
// under full FaultHound.
func Fig11(o Options) (*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	bins := fault.BinNames()
	cols := []string{"benchmark"}
	for _, b := range bins {
		cols = append(cols, b.String())
	}
	t := &Table{ID: "fig11", Title: "SDC fault breakdown under FaultHound", Columns: cols}
	names := make([]string, len(bms))
	for i, bm := range bms {
		names[i] = bm.Name
	}
	out, err := o.RunCampaign(o.CampaignSpec(names, []Scheme{FaultHound}))
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(bins))
	n := 0
	for _, bm := range bms {
		cell := out.Summary.Cell(bm.Name, string(FaultHound))
		if cell == nil || cell.Coverage == nil {
			return nil, fmt.Errorf("harness: fig11 campaign missing cell %s/%s", bm.Name, FaultHound)
		}
		cov := cell.Coverage
		row := []string{bm.Name}
		for i, b := range bins {
			f := 0.0
			if cov.SDCBase > 0 {
				f = float64(cov.Bins[b.String()]) / float64(cov.SDCBase)
			}
			row = append(row, pct(f))
			sums[i] += f
		}
		n++
		t.AddRow(row...)
	}
	mean := []string{"mean(all)"}
	for _, s := range sums {
		mean = append(mean, pct(s/float64(n)))
	}
	t.AddRow(mean...)
	t.Notes = append(t.Notes,
		"paper: non-triggering faults ~10% of SDC; completed/committed-register faults a modest fraction; rename late-read faults uncovered")
	return t, nil
}

// Fig12 reproduces Figure 12: the isolation of FaultHound's back-end
// mechanisms — false-positive rates (left), replay vs full rollback
// performance (middle), and LSQ-coverage impact (right), overall means.
func Fig12(o Options) ([]*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}

	// Left: FP rates for FH-BE-nocluster-no2level -> FH-BE-no2level -> FH-BE.
	left := &Table{
		ID:      "fig12-left",
		Title:   "Impact of clustering and 2nd-level filter on false-positive rate (mean over benchmarks)",
		Columns: []string{"config", "fp-rate"},
	}
	for _, s := range []Scheme{FHBENoClust, FHBENo2Level, FHBackend} {
		var sum float64
		for _, bm := range bms {
			o.progress("fig12-left: %s/%s", bm.Name, s)
			run, err := o.TimingRun(bm, s)
			if err != nil {
				return nil, err
			}
			sum += run.FPRate()
		}
		left.AddRow(string(s), pct(sum/float64(len(bms))))
	}
	left.Notes = append(left.Notes, "paper: each mechanism significantly lowers the rate")

	// Middle: performance of full rollback vs replay (both backend-only).
	middle := &Table{
		ID:      "fig12-middle",
		Title:   "Impact of predecessor replay on performance degradation (mean over benchmarks)",
		Columns: []string{"config", "perf-degradation"},
	}
	for _, s := range []Scheme{FHBEFullRB, FHBackend} {
		var sum float64
		for _, bm := range bms {
			o.progress("fig12-middle: %s/%s", bm.Name, s)
			base, err := o.TimingRun(bm, Baseline)
			if err != nil {
				return nil, err
			}
			run, err := o.TimingRun(bm, s)
			if err != nil {
				return nil, err
			}
			sum += float64(run.Cycles)/float64(base.Cycles) - 1
		}
		middle.AddRow(string(s), pct(sum/float64(len(bms))))
	}
	middle.Notes = append(middle.Notes,
		"paper: ~100-200 instructions per rollback vs 6-8 per replay; replay dramatically cheaper")

	// Right: SDC coverage with and without the LSQ mechanism.
	right := &Table{
		ID:      "fig12-right",
		Title:   "Impact of covering the LSQ on SDC coverage (mean over benchmarks)",
		Columns: []string{"config", "coverage"},
	}
	lsqSchemes := []Scheme{FHBENoLSQ, FHBackend}
	names := make([]string, len(bms))
	for i, bm := range bms {
		names[i] = bm.Name
	}
	out, err := o.RunCampaign(o.CampaignSpec(names, lsqSchemes))
	if err != nil {
		return nil, err
	}
	for _, s := range lsqSchemes {
		var sum float64
		for _, bm := range bms {
			cov, ok := out.Summary.Coverage(bm.Name, string(s))
			if !ok {
				return nil, fmt.Errorf("harness: fig12-right campaign missing cell %s/%s", bm.Name, s)
			}
			sum += cov
		}
		right.AddRow(string(s), pct(sum/float64(len(bms))))
	}
	right.Notes = append(right.Notes, "paper: LSQ coverage makes a significant difference")

	return []*Table{left, middle, right}, nil
}

// Table1 renders the benchmark table.
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Benchmarks (synthetic kernels substituting the paper's workloads; see DESIGN.md)",
		Columns: []string{"name", "suite", "segment", "paper run/input"},
	}
	for _, bm := range workload.All() {
		t.AddRow(bm.Name, bm.Suite, fmt.Sprintf("%d KB", bm.SegBytes>>10), bm.Paper)
	}
	return t
}

// Table2 renders the hardware-parameter table.
func Table2() *Table {
	cfg := DefaultOptions()
	pc := cfg.Threads
	t := &Table{
		ID:      "table2",
		Title:   "Hardware parameters (paper Table 2)",
		Columns: []string{"parameter", "value"},
	}
	t.AddRow("cores (simulated)", fmt.Sprintf("1 x %d-way SMT (paper: 8 cores)", pc))
	t.AddRow("fetch/decode/issue/commit", "4 wide")
	t.AddRow("ALU, Mul, FPU", "4, 2, 2")
	t.AddRow("issue queue", "40")
	t.AddRow("reorder buffer", "250")
	t.AddRow("INT, FP phys registers", "160, 64")
	t.AddRow("LSQ", "64")
	t.AddRow("delay buffer", "7 instructions")
	t.AddRow("FaultHound filters", "2 x 32-entry 64-bit TCAMs; 8-state/bit 2nd-level filter; 8-state squash machine per entry")
	t.AddRow("L1 I, L1 D", "32KB 2-way, 3 cycles")
	t.AddRow("ITLB, DTLB", "64 entries")
	t.AddRow("L2", "2MB 4-way, 20 cycles")
	return t
}

// All runs every experiment and returns the tables in paper order.
func All(o Options) ([]*Table, error) {
	var out []*Table
	out = append(out, Table1(), Table2())
	steps := []func(Options) (*Table, error){Fig6, Fig7, Fig8a, Fig8b, Fig9, Fig10, Fig11}
	for _, f := range steps {
		t, err := f(o)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	f12, err := Fig12(o)
	if err != nil {
		return nil, err
	}
	return append(out, f12...), nil
}
