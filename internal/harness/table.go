package harness

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is one figure or table of the paper, as rows of formatted
// cells. Render produces the text form; CSV a machine-readable one.
type Table struct {
	ID      string // e.g. "fig8a"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry per-table commentary (paper-vs-measured remarks).
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row where the first cell is a label and the rest
// are formatted floats.
func (t *Table) AddRowf(label string, format string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf(format, v))
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s", w, c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV returns the comma-separated form (cells containing commas are
// quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// JSON returns the table as a JSON object with id, title, columns,
// rows, and notes — the machine-readable form of the experiment output.
func (t *Table) JSON() string {
	obj := struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes}
	b, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		// The table contains only strings; marshaling cannot fail.
		panic(err)
	}
	return string(b)
}
