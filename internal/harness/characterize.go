package harness

import (
	"fmt"

	"faulthound/internal/isa"
)

// Characterize measures each kernel's execution profile on the baseline
// core — the "benchmark characteristics" table that accompanies Table 1:
// IPC, memory-op fraction, FP fraction, branch fraction and mispredict
// rate, and L1D/L2 miss rates. It documents that the synthetic suite
// spans the intended behavior classes (see docs/WORKLOADS.md).
func Characterize(o Options) (*Table, error) {
	bms, err := o.benchmarks()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "workloads",
		Title: "Measured kernel characteristics (baseline core)",
		Columns: []string{"benchmark", "suite", "IPC", "mem%", "fp%", "branch%",
			"mispredict%", "L1D miss%", "L2 miss%"},
	}
	for _, bm := range bms {
		o.progress("workloads: %s", bm.Name)
		run, err := o.TimingRun(bm, Baseline)
		if err != nil {
			return nil, err
		}
		c := run.Core
		ps := c.Stats()
		ms := c.MemStats()
		issued := float64(ps.Issued)
		memOps := float64(ps.IssuedByClass[isa.ClassLoad] + ps.IssuedByClass[isa.ClassStore] +
			ps.IssuedByClass[isa.ClassAtomic])
		fpOps := float64(ps.IssuedByClass[isa.ClassFP])
		brOps := float64(ps.IssuedByClass[isa.ClassBranch])
		div := func(a, b float64) float64 {
			if b == 0 {
				return 0
			}
			return a / b
		}
		t.AddRow(bm.Name, bm.Suite,
			fmt.Sprintf("%.2f", float64(run.Committed)/float64(run.Cycles)),
			pct(div(memOps, issued)),
			pct(div(fpOps, issued)),
			pct(div(brOps, issued)),
			pct(c.BranchMispredictRate()),
			pct(div(float64(ms.L1DMisses), float64(ms.L1DAccesses))),
			pct(div(float64(ms.L2Misses), float64(ms.L2Accesses))))
	}
	t.Notes = append(t.Notes,
		"the paper's machine: loads/stores ~25% of instructions, issue rates well under 2/cycle (Section 3.5)")
	return t, nil
}
