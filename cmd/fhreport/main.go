// Command fhreport is the artifact-contract and detector-quality tool:
// it validates campaign bundles against the versioned v1 contracts
// (internal/contract, docs/CONTRACTS.md), derives detector-quality
// reports (coverage, FP rate, detection-latency percentiles, confusion
// matrices vs the baseline golden classification), diffs two reports
// under a tolerance, and gates benchmark throughput against committed
// guard numbers. The CI release gates are built from these subcommands.
//
// Usage:
//
//	fhreport bundle [-out dir] [-no-latency] <bundle-dir>
//	fhreport diff [-tolerance 0] <bundle-or-quality.json> <bundle-or-quality.json>
//	fhreport validate <bundle-dir | artifact.json>...
//	fhreport bench [-tolerance 0.10] <got BENCH.json> <ref BENCH.json>
//
// bundle writes the derived report/quality.{json,md} sidecar next to
// the bundle's artifacts (never mutating them); -out redirects the two
// files elsewhere. diff exits non-zero when any metric differs by more
// than the relative tolerance (0 = byte-exact metrics). validate exits
// non-zero on any contract violation. bench exits non-zero when a
// gated throughput metric regresses by more than the tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"faulthound/internal/buildinfo"
	"faulthound/internal/campaign"
	"faulthound/internal/contract"
	"faulthound/internal/harness"
	"faulthound/internal/report"
)

func main() {
	flag.Usage = usage
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Generator())
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "bundle":
		err = cmdBundle(rest)
	case "diff":
		err = cmdDiff(rest)
	case "validate":
		err = cmdValidate(rest)
	case "bench":
		err = cmdBench(rest)
	default:
		fmt.Fprintf(os.Stderr, "fhreport: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhreport:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  fhreport bundle [-out dir] [-no-latency] <bundle-dir>
  fhreport diff [-tolerance 0] <bundle-or-quality.json> <bundle-or-quality.json>
  fhreport validate <bundle-dir | artifact.json>...
  fhreport bench [-tolerance 0.10] <got BENCH.json> <ref BENCH.json>
  fhreport -version
`)
}

// cmdBundle derives a bundle's quality report sidecar.
func cmdBundle(args []string) error {
	fs := flag.NewFlagSet("bundle", flag.ExitOnError)
	out := fs.String("out", "", "write quality.{json,md} into this directory instead of <bundle>/report/")
	noLatency := fs.Bool("no-latency", false, "skip the detection-latency replay (faster; omits the latency section)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("bundle wants exactly one bundle directory")
	}
	dir := fs.Arg(0)

	q, err := generate(dir, *noLatency)
	if err != nil {
		return err
	}
	var jsonPath, mdPath string
	if *out != "" {
		jsonPath, mdPath, err = report.WriteDir(*out, q)
	} else {
		jsonPath, mdPath, err = report.WriteFiles(dir, q)
	}
	if err != nil {
		return err
	}
	fmt.Println(jsonPath)
	fmt.Println(mdPath)
	return nil
}

// generate builds a bundle's quality report, replaying detected
// injections for latency unless disabled.
func generate(dir string, noLatency bool) (*report.Quality, error) {
	opts := report.Options{}
	if !noLatency {
		man, err := campaign.ReadManifest(dir)
		if err != nil {
			return nil, err
		}
		opts.Latency = report.NewReplayer(man, harness.DefaultOptions().CampaignFactory())
	}
	return report.Generate(dir, opts)
}

// loadQuality resolves a diff operand: a quality.json file, or a
// bundle directory — whose committed report/quality.json is used when
// present, and which is otherwise generated in memory.
func loadQuality(path string) (*report.Quality, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		sidecar := filepath.Join(path, contract.ReportDirName, contract.QualityJSONName)
		if _, err := os.Stat(sidecar); err == nil {
			return readQuality(sidecar)
		}
		return generate(path, false)
	}
	return readQuality(path)
}

func readQuality(path string) (*report.Quality, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := contract.ValidateJSON(contract.KindQuality, b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var q report.Quality
	if err := json.Unmarshal(b, &q); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &q, nil
}

// cmdDiff compares two quality reports metric by metric.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tolerance", 0, "relative tolerance per metric (0 = exact)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two bundles or quality.json files")
	}
	a, err := loadQuality(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := loadQuality(fs.Arg(1))
	if err != nil {
		return err
	}
	deltas := report.Diff(a, b)
	failing := report.Exceeds(deltas, *tol)
	for _, d := range deltas {
		fmt.Println(d)
	}
	if len(failing) > 0 {
		return fmt.Errorf("%d of %d deltas exceed tolerance %g", len(failing), len(deltas), *tol)
	}
	fmt.Printf("quality reports agree (%d deltas within tolerance %g)\n", len(deltas), *tol)
	return nil
}

// cmdValidate checks bundle directories and standalone artifacts
// against their contracts.
func cmdValidate(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("validate wants at least one bundle directory or artifact file")
	}
	failed := false
	for _, path := range args {
		if err := validateOne(path); err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "FAIL %s\n%v\n", path, err)
			continue
		}
		fmt.Printf("ok   %s\n", path)
	}
	if failed {
		return fmt.Errorf("contract violations found")
	}
	return nil
}

func validateOne(path string) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if st.IsDir() {
		// A directory holding pareto.json but no campaign manifest is a
		// standalone Pareto-search result (fhcampaign -optimize output,
		// or the daemon's optimize cache), not a bundle.
		if _, err := os.Stat(filepath.Join(path, "pareto.json")); err == nil {
			if _, err := os.Stat(filepath.Join(path, campaign.ManifestName)); err != nil {
				return contract.ValidateParetoDir(path)
			}
		}
		return contract.ValidateBundle(path)
	}
	switch filepath.Base(path) {
	case "results.csv":
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = contract.ValidateResultsCSV(f)
		return err
	case "pareto.csv":
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = contract.ValidateParetoCSV(f)
		return err
	}
	kind := contract.SniffKind(path)
	if kind == "" {
		return fmt.Errorf("no contract covers %q", filepath.Base(path))
	}
	return contract.ValidateJSONFile(kind, path)
}

// cmdBench gates current benchmark throughput against committed guard
// numbers.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	tol := fs.Float64("tolerance", 0.10, "allowed relative regression on gated throughput metrics")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("bench wants <got BENCH.json> <ref BENCH.json>")
	}
	got, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	ref, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	deltas, regressions, err := report.CompareBench(got, ref, *tol)
	if err != nil {
		return err
	}
	for _, d := range deltas {
		fmt.Println(d)
	}
	if len(regressions) > 0 {
		for _, d := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", d)
		}
		return fmt.Errorf("%d gated metrics regressed beyond tolerance %g", len(regressions), *tol)
	}
	fmt.Printf("bench gate passed (tolerance %g)\n", *tol)
	return nil
}
