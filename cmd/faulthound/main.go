// Command faulthound regenerates the paper's tables and figures.
//
// Usage:
//
//	faulthound -experiment all
//	faulthound -experiment fig8a -benchmarks bzip2,mcf -quick
//	faulthound -experiment fig9 -csv out/
//
// Experiments: table1, table2, fig6, fig7, fig8a, fig8b, fig9, fig10,
// fig11, fig12, all — plus the extension experiments ext-filters,
// ext-depth, ext-srt (or extensions for all three) and mp-scaling (the
// 8-core machine running shared-memory parallel Ocean).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"faulthound/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (table1, table2, fig6..fig12, all)")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all of Table 1)")
		quick      = flag.Bool("quick", false, "scaled-down run for smoke testing")
		csvDir     = flag.String("csv", "", "directory to also write per-table CSV files into")
		jsonDir    = flag.String("json", "", "directory to also write per-table JSON files into")
		injections = flag.Int("injections", 0, "override fault injections per campaign")
		ckptCycles = flag.Uint64("checkpoint-cycles", harness.DefaultOptions().Fault.CheckpointCycles, "golden checkpoint interval in cycles for injection forking (0 disables)")
		earlyExit  = flag.Bool("early-exit", harness.DefaultOptions().Fault.EarlyExit, "classify masked injections at provable reconvergence instead of simulating the full window")
		replicates = flag.Int("replicates", 0, "repeat fault campaigns with distinct seeds and average")
		commits    = flag.Uint64("commits", 0, "override per-thread commit budget of timing runs")
		seed       = flag.Uint64("seed", 0, "override experiment seed")
		verbose    = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	opts := harness.DefaultOptions()
	if *quick {
		opts = harness.QuickOptions()
	}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *injections > 0 {
		opts.Fault.Injections = *injections
	}
	opts.Fault.CheckpointCycles = *ckptCycles
	opts.Fault.EarlyExit = *earlyExit
	if *replicates > 0 {
		opts.Replicates = *replicates
	}
	if *commits > 0 {
		opts.MeasureCommits = *commits
	}
	if *seed != 0 {
		opts.Seed = *seed
		opts.Fault.Seed = *seed
	}
	opts.Verbose = *verbose

	tables, err := run(*experiment, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulthound:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
		if err := dump(*csvDir, t.ID+".csv", t.CSV()); err != nil {
			fmt.Fprintln(os.Stderr, "faulthound:", err)
			os.Exit(1)
		}
		if err := dump(*jsonDir, t.ID+".json", t.JSON()); err != nil {
			fmt.Fprintln(os.Stderr, "faulthound:", err)
			os.Exit(1)
		}
	}
}

// dump writes content into dir/name, creating dir; it is a no-op for an
// empty dir.
func dump(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

func run(experiment string, opts harness.Options) ([]*harness.Table, error) {
	one := func(t *harness.Table, err error) ([]*harness.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*harness.Table{t}, nil
	}
	switch experiment {
	case "all":
		return harness.All(opts)
	case "table1":
		return []*harness.Table{harness.Table1()}, nil
	case "table2":
		return []*harness.Table{harness.Table2()}, nil
	case "fig6":
		return one(harness.Fig6(opts))
	case "fig7":
		return one(harness.Fig7(opts))
	case "fig8a":
		return one(harness.Fig8a(opts))
	case "fig8b":
		return one(harness.Fig8b(opts))
	case "fig9":
		return one(harness.Fig9(opts))
	case "fig10":
		return one(harness.Fig10(opts))
	case "fig11":
		return one(harness.Fig11(opts))
	case "fig12":
		return harness.Fig12(opts)
	case "ext-filters":
		return one(harness.ExtFilterSize(opts))
	case "ext-depth":
		return one(harness.ExtStateDepth(opts))
	case "ext-srt":
		return one(harness.ExtFullSRT(opts))
	case "extensions":
		return harness.Extensions(opts)
	case "mp-scaling":
		return one(harness.MPScaling(opts))
	case "workloads":
		return one(harness.Characterize(opts))
	case "mp-coverage":
		return one(harness.MPCoverage(opts))
	default:
		return nil, fmt.Errorf("unknown experiment %q", experiment)
	}
}
