// Command fhasm assembles a textual program (see internal/prog.Parse
// for the syntax) and runs it on the simulated core, optionally under a
// detection scheme, comparing the result against the sequential
// reference interpreter.
//
//	fhasm program.s
//	fhasm -scheme faulthound -max-instr 100000 program.s
//	echo 'movi r1, 42
//	halt' | fhasm -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/scheme"
)

func main() {
	var (
		schemeF  = flag.String("scheme", "baseline", "scheme spec, optionally parameterized like \"faulthound?tcam=16\" (known: "+scheme.Usage()+")")
		maxInstr = flag.Uint64("max-instr", 1_000_000, "instruction budget")
		regs     = flag.Bool("regs", true, "print nonzero architectural registers")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fhasm [flags] <file.s | ->")
		os.Exit(2)
	}

	src, name, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := prog.Parse(name, src)
	if err != nil {
		fatal(err)
	}

	sp, err := scheme.Parse(*schemeF)
	if err != nil {
		fatal(err)
	}
	inst, err := scheme.Build(sp, scheme.Env{})
	if err != nil {
		fatal(err)
	}
	cfg := pipeline.DefaultConfig(1)
	if inst.Configure != nil {
		inst.Configure(&cfg)
	}
	var det detect.Detector
	if inst.NewDetector != nil {
		det = inst.NewDetector()
	}

	c, err := pipeline.New(cfg, []*prog.Program{p}, det)
	if err != nil {
		fatal(err)
	}
	maxCycles := *maxInstr * 20
	c.RunUntilCommits(0, *maxInstr, maxCycles)

	it := prog.NewInterp(p)
	it.Run(*maxInstr)

	fmt.Printf("instructions  %d committed in %d cycles (IPC %.2f)\n",
		c.Committed(0), c.Cycle(), c.Stats().IPC())
	if exc, msg := c.Excepted(0); exc {
		fmt.Printf("exception     %s\n", msg)
	} else if c.Halted(0) {
		fmt.Println("halted        cleanly")
	}
	if det != nil {
		ds := det.Stats()
		fmt.Printf("detector      %d checks, %d triggers (%d replays, %d rollbacks, %d singletons)\n",
			ds.Checks, ds.Triggers, ds.Replays, ds.Rollbacks, ds.Singletons)
	}

	match := true
	archRegs := c.ArchRegs(0)
	for r, v := range it.Regs {
		if archRegs[r] != v {
			match = false
		}
	}
	if c.Committed(0) == it.Steps && match {
		fmt.Println("reference     architectural state matches the sequential interpreter")
	} else {
		fmt.Println("reference     WARNING: state differs from the sequential interpreter")
	}

	if *regs {
		fmt.Println("registers:")
		for r := 1; r < isa.NumArchRegs; r++ {
			if v := archRegs[r]; v != 0 {
				fmt.Printf("  %-4s = %-20d (%#x)\n", isa.Reg(r), int64(v), v)
			}
		}
	}
}

func readSource(arg string) (src, name string, err error) {
	if arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), "stdin", err
	}
	b, err := os.ReadFile(arg)
	return string(b), arg, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fhasm:", err)
	os.Exit(1)
}
