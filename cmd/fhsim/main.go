// Command fhsim runs a single benchmark on a single scheme and prints
// detailed pipeline, cache, detector, and energy statistics — the
// low-level inspection tool behind the experiment harness.
//
// Usage:
//
//	fhsim -bench mcf -scheme faulthound -commits 50000
//	fhsim -bench apache -scheme pbfs-biased -threads 2
//	fhsim -bench bzip2 -trace out.json -trace-cycles 3000   # Perfetto trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"faulthound/internal/buildinfo"
	"faulthound/internal/campaign"
	"faulthound/internal/detect"
	"faulthound/internal/energy"
	"faulthound/internal/harness"
	"faulthound/internal/mem"
	"faulthound/internal/obs"
	"faulthound/internal/pipeline"
	"faulthound/internal/scheme"
	"faulthound/internal/stats"
	"faulthound/internal/wgen"
	"faulthound/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "bzip2", "benchmark name (see faulthound -experiment table1)")
		workloadF = flag.String("workload", "", "workload spec overriding -bench: a benchmark name or generated spec like \"gen?stride=64,chase=4\" (generators: "+wgen.Usage()+")")
		schemeF   = flag.String("scheme", "faulthound", "scheme spec, optionally parameterized like \"faulthound?tcam=16,delay=6\" (known: "+scheme.Usage()+")")
		list      = flag.Bool("list-schemes", false, "print the scheme registry (names, parameters, defaults) and exit")
		listW     = flag.Bool("list-workloads", false, "print the workload catalogue (benchmarks + generators, parameters, defaults) and exit")
		record    = flag.String("record", "", "record thread 0's committed load/store stream to this artifact file and exit (prints the stream hash)")
		recordOps = flag.Int("record-ops", 0, "memory ops to record with -record (default 4096)")
		replayF   = flag.String("replay", "", "replay the recorded stream artifact at this path instead of -bench/-workload")
		threads   = flag.Int("threads", 2, "SMT contexts")
		commits   = flag.Uint64("commits", 30000, "per-thread committed instructions to simulate")
		warmup    = flag.Uint64("warmup", 3000, "warmup cycles before measurement")
		trace     = flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON file of the first trace-cycles cycles (open in ui.perfetto.dev)")
		stages    = flag.String("trace-stages", "", "comma-separated stage filter (fetch,dispatch,issue,complete,commit,squash,replay,rollback,singleton,exception); alone, prints a text trace")
		traceN    = flag.Uint64("trace-cycles", 200, "cycles to trace (with -trace or -trace-stages)")
		asJSON    = flag.Bool("json", false, "emit the full stats block as one JSON object (scriptable runs)")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Generator())
		return
	}
	if *list {
		fmt.Print(scheme.Describe())
		return
	}
	if *listW {
		fmt.Print(workload.Describe())
		return
	}
	bm, err := resolveWorkload(*bench, *workloadF, *replayF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhsim:", err)
		os.Exit(1)
	}
	if _, err := scheme.Parse(*schemeF); err != nil {
		fmt.Fprintln(os.Stderr, "fhsim:", err)
		os.Exit(2)
	}
	opts := harness.DefaultOptions()
	opts.Threads = *threads
	opts.MeasureCommits = *commits
	opts.WarmupCycles = *warmup

	if *record != "" {
		if err := runRecord(opts, bm, harness.Scheme(*schemeF), *record, *recordOps); err != nil {
			fmt.Fprintln(os.Stderr, "fhsim:", err)
			os.Exit(1)
		}
		return
	}

	if *trace != "" || *stages != "" {
		if err := runTraced(opts, bm, harness.Scheme(*schemeF), *trace, *stages, *traceN); err != nil {
			fmt.Fprintln(os.Stderr, "fhsim:", err)
			os.Exit(1)
		}
		return
	}

	run, err := opts.TimingRun(bm, harness.Scheme(*schemeF))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhsim:", err)
		os.Exit(1)
	}
	c := run.Core
	cycles, committed := run.Cycles, run.Committed

	ps := c.Stats()
	ms := c.MemStats()
	if *asJSON {
		if err := emitJSON(bm, *schemeF, *threads, run); err != nil {
			fmt.Fprintln(os.Stderr, "fhsim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("benchmark        %s (%s)\n", bm.Name, bm.Suite)
	fmt.Printf("scheme           %s\n", *schemeF)
	fmt.Printf("threads          %d\n", *threads)
	fmt.Printf("cycles           %d (measured window)\n", cycles)
	fmt.Printf("committed        %d (all threads)\n", committed)
	fmt.Printf("IPC              %.3f\n", float64(committed)/float64(cycles))
	fmt.Printf("branch mispred   %.2f%%\n", c.BranchMispredictRate()*100)
	fmt.Printf("loads/stores     %d / %d\n", ps.Loads, ps.Stores)
	fmt.Printf("L1D miss rate    %.2f%%\n", 100*float64(ms.L1DMisses)/float64(stats.Max64(ms.L1DAccesses, 1)))
	fmt.Printf("L2 miss rate     %.2f%%\n", 100*float64(ms.L2Misses)/float64(stats.Max64(ms.L2Accesses, 1)))
	fmt.Printf("replay triggers  %d (uops replayed %d)\n", ps.ReplayTriggers, ps.ReplayedUops)
	fmt.Printf("rollbacks        %d (uops squashed %d)\n", ps.Rollbacks, ps.RollbackSquashedUops)
	fmt.Printf("singletons       %d (faults declared %d)\n", ps.Singletons, ps.FaultsDeclared)
	fmt.Printf("shadow ops       %d\n", ps.ShadowOps)

	var ds detect.Stats
	if d := c.Detector(); d != nil {
		ds = d.Stats()
		fmt.Printf("detector checks  %d, triggers %d, suppressed %d\n", ds.Checks, ds.Triggers, ds.Suppressed)
		fmt.Printf("detector actions replay=%d rollback=%d singleton=%d\n", ds.Replays, ds.Rollbacks, ds.Singletons)
	}
	b := energy.Default().Compute(ps, ms, ds)
	fmt.Printf("energy total     %.0f units\n", b.Total())
	fmt.Printf("  fetch=%.0f rename=%.0f issue=%.0f exec=%.0f regfile=%.0f\n",
		b.Fetch, b.Rename, b.Issue, b.Exec, b.RegFile)
	fmt.Printf("  lsq=%.0f caches=%.0f commit=%.0f static=%.0f shadow=%.0f detector=%.0f\n",
		b.LSQ, b.Caches, b.Commit, b.Static, b.Shadow, b.Detector)
}

// resolveWorkload picks the benchmark: a replay artifact beats
// -workload, which beats -bench. Generated specs come back with their
// canonical spec string as the benchmark name.
func resolveWorkload(bench, workloadSpec, replayPath string) (workload.Benchmark, error) {
	if replayPath != "" {
		s, err := wgen.ReadStreamFile(replayPath)
		if err != nil {
			return workload.Benchmark{}, err
		}
		w, err := wgen.FromStream(s)
		if err != nil {
			return workload.Benchmark{}, err
		}
		return workload.Benchmark{
			Name:     "replay:" + replayPath,
			Suite:    "Generated",
			Paper:    fmt.Sprintf("replay of %s (%d ops, seed %d)", s.Workload, len(s.Ops), s.Seed),
			SegBytes: w.SegBytes,
			Build:    w.Build,
		}, nil
	}
	if workloadSpec != "" {
		return workload.Resolve(workloadSpec)
	}
	return workload.Resolve(bench)
}

// runRecord runs the workload single-threaded from cycle 0 with the
// stream recorder attached, writes the artifact, and prints the
// base-independent stream hash (what round-trip checks compare).
func runRecord(opts harness.Options, bm workload.Benchmark, s harness.Scheme, path string, ops int) error {
	c, err := opts.BuildCore(bm, s, 1)
	if err != nil {
		return err
	}
	rec := wgen.NewRecorder(bm.Name, opts.Seed, ops)
	rec.Attach(c)
	const maxCycles = 50_000_000
	for !rec.Full() && !c.AllHalted() && c.Cycle() < maxCycles {
		c.Run(4096)
	}
	st := rec.Stream()
	if !rec.Full() {
		return fmt.Errorf("recorded only %d ops before cycle %d", len(st.Ops), c.Cycle())
	}
	if err := st.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("recorded  %s\n", bm.Name)
	fmt.Printf("ops       %d\n", len(st.Ops))
	fmt.Printf("hash      %s\n", st.Hash())
	fmt.Printf("artifact  %s\n", path)
	return nil
}

// runTraced runs the first traceN cycles under a tracer: with outFile
// set, a Perfetto/Chrome trace-event JSON file (one track per SMT
// thread, timestamps in cycles); otherwise a stage-filtered text trace
// on stdout.
func runTraced(opts harness.Options, bm workload.Benchmark, s harness.Scheme, outFile, stages string, traceN uint64) error {
	c, err := opts.BuildCore(bm, s, opts.Threads)
	if err != nil {
		return err
	}
	names := map[string]pipeline.TraceStage{
		"fetch": pipeline.TraceFetch, "dispatch": pipeline.TraceDispatch,
		"issue": pipeline.TraceIssue, "complete": pipeline.TraceComplete,
		"commit": pipeline.TraceCommit, "squash": pipeline.TraceSquash,
		"replay": pipeline.TraceReplay, "rollback": pipeline.TraceRollback,
		"singleton": pipeline.TraceSingleton, "exception": pipeline.TraceException,
	}
	var want []pipeline.TraceStage
	if stages != "" {
		for _, s := range strings.Split(stages, ",") {
			st, ok := names[strings.TrimSpace(s)]
			if !ok {
				return fmt.Errorf("unknown trace stage %q", s)
			}
			want = append(want, st)
		}
	}
	if outFile == "" {
		c.SetTracer(c.NewWriterTracer(os.Stdout, want...))
		for i := uint64(0); i < traceN && !c.AllHalted(); i++ {
			c.Step()
		}
		return nil
	}
	if len(want) == 0 {
		// Default to the events that stay legible at full speed; a
		// per-uop fetch/issue firehose is opt-in via -trace-stages.
		want = []pipeline.TraceStage{pipeline.TraceCommit, pipeline.TraceSquash,
			pipeline.TraceReplay, pipeline.TraceRollback, pipeline.TraceSingleton}
	}
	p := obs.NewPerfetto()
	for t := 0; t < opts.Threads; t++ {
		p.NameTrack(t, fmt.Sprintf("smt-%d", t))
	}
	c.SetTracer(p.PipelineTracer(want...))
	for i := uint64(0); i < traceN && !c.AllHalted(); i++ {
		c.Step()
	}
	if err := p.WriteFile(outFile); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fhsim: wrote %d trace events to %s (open in ui.perfetto.dev)\n", p.Len(), outFile)
	return nil
}

// emitJSON writes the run's full stats block as a single JSON object on
// stdout, marshaled the same way the campaign subsystem marshals its
// summary artifacts (stable keys, indented, provenance-stamped).
func emitJSON(bm workload.Benchmark, schemeSpec string, threads int, run harness.Run) error {
	c := run.Core
	ps, ms := c.Stats(), c.MemStats()
	var ds detect.Stats
	if d := c.Detector(); d != nil {
		ds = d.Stats()
	}
	b := energy.Default().Compute(ps, ms, ds)
	obj := struct {
		Provenance  campaign.Provenance `json:"provenance"`
		Benchmark   string              `json:"benchmark"`
		Suite       string              `json:"suite"`
		Scheme      string              `json:"scheme"`
		Threads     int                 `json:"threads"`
		Cycles      uint64              `json:"cycles"`
		Committed   uint64              `json:"committed"`
		IPC         float64             `json:"ipc"`
		MispredRate float64             `json:"branch_mispredict_rate"`
		FPRate      float64             `json:"fp_rate"`
		Pipeline    pipeline.Stats      `json:"pipeline"`
		Memory      mem.HierarchyStats  `json:"memory"`
		Detector    detect.Stats        `json:"detector"`
		Energy      energy.Breakdown    `json:"energy"`
		EnergyTotal float64             `json:"energy_total"`
	}{
		Provenance:  campaign.NewProvenance(campaign.DefaultRunID()),
		Benchmark:   bm.Name,
		Suite:       bm.Suite,
		Scheme:      schemeSpec,
		Threads:     threads,
		Cycles:      run.Cycles,
		Committed:   run.Committed,
		IPC:         float64(run.Committed) / float64(stats.Max64(run.Cycles, 1)),
		MispredRate: c.BranchMispredictRate(),
		FPRate:      run.FPRate(),
		Pipeline:    ps,
		Memory:      ms,
		Detector:    ds,
		Energy:      b,
		EnergyTotal: b.Total(),
	}
	out, err := campaign.MarshalJSON(obj)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(out)
	return err
}
