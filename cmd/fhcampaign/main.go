// Command fhcampaign runs a parallel, resumable fault-injection
// campaign and writes a provenance-stamped artifact bundle: a manifest
// (run ID, config, seed, toolchain, git commit), a JSONL journal of
// every completed injection, per-injection results.csv, aggregate
// summary.json, and a human-readable report.md.
//
// Usage:
//
//	fhcampaign -bench bzip2,mcf -schemes faulthound -injections 1000 -workers 4
//	fhcampaign -bench all -schemes pbfs,faulthound -out results/campaigns/sweep1
//	fhcampaign -resume results/campaigns/sweep1
//	fhcampaign -addr localhost:8418 -bench bzip2 -schemes faulthound
//
// Results are bit-identical for any -workers value, and an interrupted
// campaign (Ctrl-C) resumes from its journal with -resume, reproducing
// the uninterrupted bundle byte for byte.
//
// With -addr the campaign is submitted to a running fhserved daemon
// instead of executing locally: identical specs deduplicate against
// the daemon's spec-hash cache, and the rendered tables come from the
// daemon's bundle. See docs/SERVER.md.
//
// With -optimize the tool runs a Pareto search instead of a fixed
// campaign: a deterministic, seeded evolutionary driver mutates the
// base schemes' registry parameters, scores each configuration on
// coverage, false-positive rate, energy overhead, and perf overhead,
// and writes the non-dominated frontier as pareto.{csv,json,md}
// artifacts. Same seed + weights + budget ⇒ byte-identical artifacts,
// for any -workers value. See docs/OPTIMIZE.md:
//
//	fhcampaign -optimize -quick -bench bzip2 -schemes faulthound -budget 12
//	fhcampaign -optimize -addr localhost:8418 -bench bzip2 -schemes faulthound
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/harness"
	"faulthound/internal/obs"
	"faulthound/internal/obs/metrics"
	"faulthound/internal/scheme"
	"faulthound/internal/search"
	"faulthound/internal/server"
	"faulthound/internal/wgen"
	"faulthound/internal/workload"
)

func main() {
	var (
		bench      = flag.String("bench", "all", "comma-separated benchmarks, or \"all\" for the full Table-1 suite")
		workloads  = flag.String("workloads", "", "comma-separated workload specs overriding -bench; generated specs parameterize with '?' (\"gen?stride=64,seg=256k\") and '|' sweeps fan out into cells (\"gen?stride=8|64|512\") (generators: "+wgen.Usage()+")")
		schemes    = flag.String("schemes", "faulthound", "comma-separated scheme specs under test (baseline runs implicitly); parameters attach with '?' (\"faulthound?tcam=16,delay=6\") and '|' sweeps fan out into cells (\"faulthound?tcam=8|16|32\")")
		injections = flag.Int("injections", 0, "injections per benchmark x scheme cell (default: harness default)")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); results do not depend on it")
		seed       = flag.Uint64("seed", 0, "campaign seed override")
		runID      = flag.String("runid", "", "run identifier (default: UTC timestamp)")
		out        = flag.String("out", "", "artifact bundle directory (default: results/campaigns/<runid>)")
		resume     = flag.String("resume", "", "resume an interrupted campaign from its bundle directory")
		addr       = flag.String("addr", "", "submit to a fhserved daemon at this address instead of running locally")
		retries    = flag.Int("retries", 4, "with -addr: retry transient daemon failures (connection resets, 5xx, 429) this many times with jittered exponential backoff")
		traceDir   = flag.String("trace-dir", "", "write a Perfetto trace.json of the run's injection lifecycle into this directory")
		quick      = flag.Bool("quick", false, "scaled-down fault config for smoke testing")
		ckptCycles = flag.Uint64("checkpoint-cycles", fault.DefaultConfig().CheckpointCycles, "golden checkpoint interval in cycles for injection forking (0 disables)")
		earlyExit  = flag.Bool("early-exit", fault.DefaultConfig().EarlyExit, "classify masked injections at provable reconvergence instead of simulating the full window")
		verbose    = flag.Bool("v", false, "per-cell progress lines")

		// Pareto search (docs/OPTIMIZE.md).
		optimize   = flag.Bool("optimize", false, "run a Pareto search over the base schemes' parameters instead of a fixed campaign")
		budget     = flag.Int("budget", 8, "with -optimize: distinct configurations to evaluate")
		optWeights = flag.String("fitness-weights", "", "with -optimize: objective weights as \"coverage=1,fp=1,energy=1,perf=1\" (missing keys default to 1)")
		optParams  = flag.String("opt-params", "", "with -optimize: comma-separated parameter names to mutate (default: every mutable parameter)")
	)
	flag.Parse()

	opts := harness.DefaultOptions()
	if *quick {
		opts = harness.QuickOptions()
	}
	opts.Verbose = *verbose
	opts.Workers = *workers

	if *optimize {
		if *resume != "" {
			fatal(fmt.Errorf("-optimize and -resume are incompatible (searches are cheap to rerun: same seed, same frontier)"))
		}
		runOptimize(opts, optimizeFlags{
			bench:      *bench,
			workloads:  *workloads,
			schemes:    *schemes,
			injections: *injections,
			seed:       *seed,
			budget:     *budget,
			weights:    *optWeights,
			params:     *optParams,
			runID:      *runID,
			out:        *out,
			addr:       *addr,
			retries:    *retries,
			verbose:    *verbose,
		})
		return
	}

	var (
		spec campaign.Spec
		dir  string
	)
	if *addr != "" && *resume != "" {
		fatal(fmt.Errorf("-addr and -resume are incompatible (the daemon resumes its own jobs)"))
	}
	if *resume != "" {
		man, err := campaign.ReadManifest(*resume)
		if err != nil {
			fatal(err)
		}
		spec = man.Spec
		spec.Workers = *workers // 0 keeps GOMAXPROCS; flag overrides
		dir = *resume
	} else {
		spec = opts.CampaignSpec(nil, nil)
		benches, err := benchList(*bench, *workloads)
		if err != nil {
			fatal(err)
		}
		spec.Benchmarks = benches
		specs, err := scheme.ParseList(*schemes)
		if err != nil {
			fatal(err)
		}
		for _, sp := range specs {
			spec.Schemes = append(spec.Schemes, sp.String())
		}
		if *injections > 0 {
			spec.Fault.Injections = *injections
		}
		if *seed != 0 {
			spec.Fault.Seed = *seed
		}
		spec.RunID = *runID
		if spec.RunID == "" {
			spec.RunID = campaign.DefaultRunID()
		}
		dir = *out
		if dir == "" {
			dir = filepath.Join("results", "campaigns", spec.RunID)
		}
	}
	// Execution-strategy knobs apply to fresh and resumed runs alike:
	// they are excluded from the manifest (results don't depend on
	// them), so a resume takes them from the flags, not the bundle.
	spec.Fault.CheckpointCycles = *ckptCycles
	spec.Fault.EarlyExit = *earlyExit

	// Ctrl-C cancels cleanly: the journal keeps every completed
	// injection and the run resumes with -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *addr != "" {
		runRemote(ctx, *addr, *retries, spec)
		return
	}

	// The latency sink always rides along (it feeds the end-of-run
	// summary line); the Perfetto exporter only with -trace-dir.
	wallHist := metrics.NewHistogram(metrics.ExpBuckets(0.001, 2, 14))
	var perf *obs.Perfetto
	if *traceDir != "" {
		perf = obs.NewPerfetto()
		for w := 0; w < spec.WorkerCount(); w++ {
			perf.NameTrack(w, fmt.Sprintf("worker-%d", w))
		}
	}
	eng := &campaign.Engine{
		Spec:     spec,
		Factory:  opts.CampaignFactory(),
		Progress: progressLine(),
		Obs:      obs.Tee(latencySink{wallHist}, perfettoSink(perf)),
	}
	if *verbose {
		eng.OnCell = func(c campaign.Cell) {
			fmt.Fprintf(os.Stderr, "# preparing %s\n", c)
		}
	}

	outcome, err := eng.Run(ctx, dir, *resume != "")
	fmt.Fprintln(os.Stderr)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "fhcampaign: interrupted; completed injections are journaled at:\n  %s\nresume with:\n  fhcampaign -resume %s\n",
				filepath.Join(dir, campaign.JournalName), dir)
			os.Exit(130)
		}
		fatal(err)
	}

	// Render the summary through the same harness tables figure
	// generation uses.
	sum := outcome.Summary
	benches := spec.Benchmarks
	schemeList := cellSchemes(spec, benches)
	if len(schemeList) > 0 {
		fmt.Println(harness.CoverageTableFromSummary("coverage",
			"SDC coverage (fraction of would-be-SDC faults corrected or detected)",
			sum, benches, schemeList).Render())
		fmt.Println(harness.FPTableFromSummary("fp-rate",
			"False-positive rate (golden-run detector actions per committed instruction)",
			sum, benches, append([]harness.Scheme{campaign.BaselineScheme}, schemeList...)).Render())
	}
	printCellSpecs(spec)
	if n := wallHist.Count(); n > 0 {
		fmt.Printf("injection wall time: p50=%s p95=%s max=%s (n=%d)\n",
			secs(wallHist.Quantile(0.5)), secs(wallHist.Quantile(0.95)), secs(wallHist.Max()), n)
	}
	if perf != nil {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
		tf := filepath.Join(*traceDir, "trace.json")
		if err := perf.WriteFile(tf); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:  %s (%d events; open in ui.perfetto.dev)\n", tf, perf.Len())
	}
	// Executed-injection throughput (resumed injections are replayed
	// from the journal, not simulated, so they don't count).
	injRate := ""
	if executed := len(outcome.Cells)*sum.Injections - outcome.Resumed; executed > 0 && outcome.Elapsed > 0 {
		injRate = fmt.Sprintf(", %.1f inj/s", float64(executed)/outcome.Elapsed.Seconds())
	}
	fmt.Printf("bundle: %s (%d cells, %d injections/cell, %d resumed, wall clock %s%s)\n",
		dir, len(outcome.Cells), sum.Injections, outcome.Resumed, outcome.Elapsed.Round(time.Millisecond), injRate)
	fmt.Printf("report: %s\n", filepath.Join(dir, campaign.ReportName))
}

// latencySink folds closed injection spans into a histogram for the
// end-of-run wall-time summary line.
type latencySink struct{ h *metrics.Histogram }

func (l latencySink) Event(ev obs.Event) {
	if ev.Kind == obs.KindEnd && ev.Name == "injection" && ev.Arg != "cancelled" {
		l.h.Observe(ev.Dur.Seconds())
	}
}

// perfettoSink adapts a possibly-nil *Perfetto to the nil-interface
// convention obs.Tee expects.
func perfettoSink(p *obs.Perfetto) obs.Sink {
	if p == nil {
		return nil
	}
	return p
}

// secs renders a quantile (in seconds) as a rounded duration.
func secs(v float64) time.Duration {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond)
}

// runRemote submits the spec to a fhserved daemon, follows the
// progress stream, and renders the daemon's summary through the same
// tables the local path uses. Transient failures (daemon restarts,
// 429 admission rejects, dropped event streams) are retried; Submit is
// idempotent because the daemon deduplicates by spec hash.
func runRemote(ctx context.Context, addr string, retries int, spec campaign.Spec) {
	cl := server.NewClient(addr)
	cl.Retries = retries
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		fatal(err)
	}
	if st.CacheHit {
		fmt.Fprintf(os.Stderr, "fhcampaign: spec matches job %s (%s); attaching\n", st.ID, st.State)
	} else {
		fmt.Fprintf(os.Stderr, "fhcampaign: submitted job %s\n", st.ID)
	}

	progress := progressLine()
	final, err := cl.Watch(ctx, st.ID, func(ev server.Event) {
		if ev.Total > 0 {
			progress(ev.Done, ev.Total)
		}
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "fhcampaign: detached; the daemon keeps running job %s\n", st.ID)
			os.Exit(130)
		}
		fatal(err)
	}
	if final.State != server.StateDone {
		fatal(fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error))
	}

	sum, err := cl.Summary(ctx, final.ID)
	if err != nil {
		fatal(err)
	}
	benches := spec.Benchmarks
	schemeList := cellSchemes(spec, benches)
	if len(schemeList) > 0 {
		fmt.Println(harness.CoverageTableFromSummary("coverage",
			"SDC coverage (fraction of would-be-SDC faults corrected or detected)",
			sum, benches, schemeList).Render())
		fmt.Println(harness.FPTableFromSummary("fp-rate",
			"False-positive rate (golden-run detector actions per committed instruction)",
			sum, benches, append([]harness.Scheme{campaign.BaselineScheme}, schemeList...)).Render())
	}
	printCellSpecs(spec)
	fmt.Printf("job: %s (run %s, %d injections/cell)\n", final.ID, final.RunID, sum.Injections)
	fmt.Printf("bundle: %s/v1/campaigns/%s/bundle/\n", cl.Base, final.ID)
}

// optimizeFlags carries the flag values the -optimize path consumes.
type optimizeFlags struct {
	bench, workloads, schemes string
	injections                int
	seed                      uint64
	budget                    int
	weights, params           string
	runID, out, addr          string
	retries                   int
	verbose                   bool
}

// runOptimize executes the plan/execute/score stack as a Pareto
// search: locally through the harness evaluator, or on a daemon via
// POST /v1/optimize when -addr is set. Either way the artifacts land
// in the output directory and the front prints to stdout.
func runOptimize(opts harness.Options, of optimizeFlags) {
	benches, err := benchList(of.bench, of.workloads)
	if err != nil {
		fatal(err)
	}
	base, err := scheme.ParseList(of.schemes)
	if err != nil {
		fatal(err)
	}
	weights, err := search.ParseWeights(of.weights)
	if err != nil {
		fatal(err)
	}
	var params []string
	for _, p := range strings.Split(of.params, ",") {
		if p = strings.TrimSpace(p); p != "" {
			params = append(params, p)
		}
	}
	if of.injections > 0 {
		opts.Fault.Injections = of.injections
	}
	// -seed drives the mutation RNG only; the fault seed stays at the
	// harness (or daemon) default so local and -addr runs of the same
	// request score identically. A zero seed defaults to the fault seed
	// so a bare run is still fully pinned.
	searchSeed := of.seed
	if searchSeed == 0 {
		searchSeed = opts.Fault.Seed
	}
	runID := of.runID
	if runID == "" {
		runID = campaign.DefaultRunID()
	}
	dir := of.out
	if dir == "" {
		dir = filepath.Join("results", "optimize", runID)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var rep *search.Report
	if of.addr != "" {
		var specs []string
		for _, sp := range base {
			specs = append(specs, sp.String())
		}
		cl := server.NewClient(of.addr)
		cl.Retries = of.retries
		rep, err = cl.Optimize(ctx, server.OptimizeRequest{
			Benchmarks: benches,
			Schemes:    specs,
			Budget:     of.budget,
			Seed:       searchSeed,
			Weights:    weights.String(),
			Params:     params,
			Injections: of.injections,
		})
		if err != nil {
			fatal(err)
		}
	} else {
		cfg := search.Config{
			Seed:    searchSeed,
			Budget:  of.budget,
			Weights: weights,
			Base:    base,
			Params:  params,
			Eval:    harness.NewSearchEval(opts.NewEvaluator(fault.NewPreparedCache(), progressLine()), benches),
		}
		if of.verbose {
			cfg.Log = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		res, err := search.Run(ctx, cfg)
		fmt.Fprintln(os.Stderr)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "fhcampaign: interrupted (searches have no resume; rerun with the same seed)")
				os.Exit(130)
			}
			fatal(err)
		}
		rep = search.NewReport(runID, benches, cfg, res)
	}

	if err := rep.WriteArtifacts(dir); err != nil {
		fatal(err)
	}
	front := rep.Front()
	fmt.Printf("pareto front: %d non-dominated of %d evaluated (%d rounds, seed %d)\n",
		len(front), rep.Evaluated, rep.Rounds, rep.Seed)
	for _, p := range front {
		fmt.Printf("  %-32s coverage=%.4f fp=%.6f energy=%+.4f perf=%+.4f fitness=%.4f\n",
			p.Spec, p.Coverage, p.FPRate, p.EnergyOverhead, p.PerfOverhead, p.Fitness)
	}
	fmt.Printf("weights: %s\n", rep.Weights.String())
	fmt.Printf("artifacts: %s\n", dir)
}

// cellSchemes lists the non-baseline scheme specs of the campaign in
// cell order, as the table column keys.
func cellSchemes(spec campaign.Spec, benches []string) []harness.Scheme {
	var out []harness.Scheme
	for _, c := range spec.Cells() {
		if c.Bench == benches[0] && c.Scheme != campaign.BaselineSpec {
			out = append(out, harness.Scheme(c.Scheme.String()))
		}
	}
	return out
}

// printCellSpecs prints every distinct scheme and workload of the
// campaign with its canonical spec and the fully-resolved parameter
// list, so sweep bundles are self-describing ("which tcam size — or
// stride — was this cell again?").
func printCellSpecs(spec campaign.Spec) {
	seen := map[string]bool{}
	fmt.Println("cells (canonical -> resolved):")
	for _, c := range spec.Cells() {
		sp := c.Scheme.String()
		if seen[sp] {
			continue
		}
		seen[sp] = true
		resolved, err := scheme.Resolved(c.Scheme)
		if err != nil {
			resolved = sp
		}
		fmt.Printf("  %-28s %s\n", sp, resolved)
	}
	fmt.Println("workloads (canonical -> resolved):")
	seenB := map[string]bool{}
	for _, c := range spec.Cells() {
		if seenB[c.Bench] {
			continue
		}
		seenB[c.Bench] = true
		resolved := c.Bench
		if wgen.IsGenerated(c.Bench) {
			if r, err := wgen.Resolved(wgen.FromString(c.Bench)); err == nil {
				resolved = r
			}
		}
		fmt.Printf("  %-28s %s\n", c.Bench, resolved)
	}
}

// benchList resolves the -bench/-workloads flags: -workloads (spec
// syntax, sweeps fan out) overrides -bench; "all" is the full Table-1
// suite. Every entry comes back validated and canonical.
func benchList(bench, workloadSpecs string) ([]string, error) {
	raw := workloadSpecs
	if raw == "" {
		raw = bench
	}
	if raw == "all" || raw == "" {
		var names []string
		for _, bm := range workload.All() {
			names = append(names, bm.Name)
		}
		return names, nil
	}
	items, err := workload.SplitList(raw)
	if err != nil {
		return nil, err
	}
	return workload.ExpandSpecs(items)
}

// progressLine returns a live completed/total meter on stderr,
// throttled to at most ~1000 redraws per campaign.
func progressLine() func(done, total int) {
	return func(done, total int) {
		step := total / 1000
		if step < 1 {
			step = 1
		}
		if done%step == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%d/%d injections (%.1f%%)", done, total, 100*float64(done)/float64(total))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fhcampaign:", err)
	os.Exit(1)
}
