// Command fhserved is the campaign-serving daemon: an HTTP front-end
// over the campaign engine with a bounded job queue, a spec-hash
// result cache, streaming progress, and Prometheus metrics.
//
// Usage:
//
//	fhserved -addr :8418 -data results/server -jobs 1
//
// Submit campaigns with cmd/fhcampaign's -addr flag or plain curl:
//
//	curl -d '{"benchmarks":["bzip2"],"schemes":["faulthound"]}' \
//	    localhost:8418/v1/campaigns
//
// Schemes are registry specs: parameters attach with '?'
// ("faulthound?tcam=16,delay=6") and sweep values with '|' fan out
// into cells. GET /v1/schemes lists every scheme with its typed
// parameters; an unknown or malformed spec is rejected with a 400
// carrying the known-scheme list. See docs/SCHEMES.md.
//
// Identical specs deduplicate: a spec already queued or running
// attaches to the in-flight job; one already completed is served from
// the on-disk cache. On SIGTERM the daemon drains — running campaigns
// cancel promptly, their journals stay on disk, and the next start
// rescans -data and resumes every unfinished job. See docs/SERVER.md
// and docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"faulthound/internal/harness"
	"faulthound/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8418", "HTTP listen address")
		debugAddr = flag.String("debug-addr", "", "optional listen address for net/http/pprof (e.g. localhost:6060); empty disables it")
		data      = flag.String("data", "results/server", "data root: one directory per job, named by spec hash")
		jobs      = flag.Int("jobs", 1, "campaigns executing concurrently")
		workers   = flag.Int("workers", 0, "injection workers per campaign (0 = GOMAXPROCS); results do not depend on it")
		queue     = flag.Int("queue", 64, "pending-job queue depth (overflow is rejected with 503)")
		maxInj    = flag.Int("max-injections", 0, "reject specs above this total injection count (0 = unlimited)")
		quick     = flag.Bool("quick", false, "scaled-down default fault config for smoke testing")
		verbose   = flag.Bool("v", false, "debug-level logging (every job state transition)")
	)
	flag.Parse()
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	opts := harness.DefaultOptions()
	if *quick {
		opts = harness.QuickOptions()
	}
	cfg := server.Config{
		Root:          *data,
		Factory:       opts.CampaignFactory(),
		BaseFault:     opts.Fault,
		Jobs:          *jobs,
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxInjections: *maxInj,
		Log:           log,
	}

	s, err := server.New(cfg)
	if err != nil {
		log.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if un := s.Unfinished(); len(un) > 0 {
		log.Info("resuming unfinished jobs", "count", len(un), "data", *data, "jobs", un)
	}
	s.Start()

	if *debugAddr != "" {
		// The pprof handlers registered by the blank import live on
		// http.DefaultServeMux; serve that mux on a separate, typically
		// loopback-only, address so profiling never rides the public API.
		go func() {
			log.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Error("pprof server failed", "err", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "data", *data, "runners", *jobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Error("http server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	log.Info("signal received; draining (in-flight campaigns journal and resume on next start)")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := s.Drain(shutdownCtx); err != nil {
		log.Warn("drain", "err", err)
	}
	if un := s.Unfinished(); len(un) > 0 {
		log.Info("jobs unfinished; restart fhserved to resume", "count", len(un), "data", *data, "jobs", un)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fhserved:", err)
		os.Exit(1)
	}
}
