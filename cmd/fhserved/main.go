// Command fhserved is the campaign-serving daemon: an HTTP front-end
// over the campaign engine with a bounded job queue, a spec-hash
// result cache, streaming progress, and Prometheus metrics.
//
// Usage:
//
//	fhserved -addr :8418 -data results/server -jobs 1
//
// Submit campaigns with cmd/fhcampaign's -addr flag or plain curl:
//
//	curl -d '{"benchmarks":["bzip2"],"schemes":["faulthound"]}' \
//	    localhost:8418/v1/campaigns
//
// Identical specs deduplicate: a spec already queued or running
// attaches to the in-flight job; one already completed is served from
// the on-disk cache. On SIGTERM the daemon drains — running campaigns
// cancel promptly, their journals stay on disk, and the next start
// rescans -data and resumes every unfinished job. See docs/SERVER.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"faulthound/internal/harness"
	"faulthound/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8418", "HTTP listen address")
		data    = flag.String("data", "results/server", "data root: one directory per job, named by spec hash")
		jobs    = flag.Int("jobs", 1, "campaigns executing concurrently")
		workers = flag.Int("workers", 0, "injection workers per campaign (0 = GOMAXPROCS); results do not depend on it")
		queue   = flag.Int("queue", 64, "pending-job queue depth (overflow is rejected with 503)")
		maxInj  = flag.Int("max-injections", 0, "reject specs above this total injection count (0 = unlimited)")
		quick   = flag.Bool("quick", false, "scaled-down default fault config for smoke testing")
		verbose = flag.Bool("v", false, "log every job state transition")
	)
	flag.Parse()
	log.SetPrefix("fhserved: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	opts := harness.DefaultOptions()
	if *quick {
		opts = harness.QuickOptions()
	}
	cfg := server.Config{
		Root:          *data,
		Factory:       opts.CampaignFactory(),
		BaseFault:     opts.Fault,
		Jobs:          *jobs,
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxInjections: *maxInj,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	s, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if un := s.Unfinished(); len(un) > 0 {
		log.Printf("resuming %d unfinished job(s) from %s: %v", len(un), *data, un)
	}
	s.Start()

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("serving on %s (data root %s, %d job runner(s))", *addr, *data, *jobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received; draining (in-flight campaigns journal and resume on next start)")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(shutdownCtx); err != nil {
		log.Printf("%v", err)
	}
	if un := s.Unfinished(); len(un) > 0 {
		log.Printf("%d job(s) unfinished; restart fhserved with -data %s to resume: %v", len(un), *data, un)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fhserved:", err)
		os.Exit(1)
	}
}
