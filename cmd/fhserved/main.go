// Command fhserved is the campaign-serving daemon: an HTTP front-end
// over the campaign engine with a bounded job queue, a spec-hash
// result cache, streaming progress, and Prometheus metrics.
//
// Usage:
//
//	fhserved -addr :8418 -data results/server -jobs 1
//
// Submit campaigns with cmd/fhcampaign's -addr flag or plain curl:
//
//	curl -d '{"benchmarks":["bzip2"],"schemes":["faulthound"]}' \
//	    localhost:8418/v1/campaigns
//
// Schemes are registry specs: parameters attach with '?'
// ("faulthound?tcam=16,delay=6") and sweep values with '|' fan out
// into cells. GET /v1/schemes lists every scheme with its typed
// parameters; an unknown or malformed spec is rejected with a 400
// carrying the known-scheme list. See docs/SCHEMES.md.
//
// Identical specs deduplicate: a spec already queued or running
// attaches to the in-flight job; one already completed is served from
// the on-disk cache. On SIGTERM the daemon drains — running campaigns
// cancel promptly, their journals stay on disk, and the next start
// rescans -data and resumes every unfinished job. See docs/SERVER.md
// and docs/OBSERVABILITY.md.
//
// Cluster modes (docs/CLUSTER.md): -coordinator accepts the same API
// but shards each campaign's injections across joined workers, merging
// the streamed results into a bundle byte-identical to a single-node
// run; -join <addr> turns the daemon into a worker that registers with
// a coordinator and executes leased descriptor ranges (while still
// serving its own front door):
//
//	fhserved -coordinator -addr :8418 -data results/coord
//	fhserved -join host:8418 -addr :8419 -data results/w1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"faulthound/internal/buildinfo"
	"faulthound/internal/cluster"
	"faulthound/internal/fault"
	"faulthound/internal/harness"
	"faulthound/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8418", "HTTP listen address")
		debugAddr = flag.String("debug-addr", "", "optional listen address for net/http/pprof (e.g. localhost:6060); empty disables it")
		data      = flag.String("data", "results/server", "data root: one directory per job, named by spec hash")
		jobs      = flag.Int("jobs", 1, "campaigns executing concurrently")
		workers   = flag.Int("workers", 0, "injection workers per campaign (0 = GOMAXPROCS); results do not depend on it")
		queue     = flag.Int("queue", 64, "pending-job queue depth (overflow is rejected with a structured 429)")
		maxInj    = flag.Int("max-injections", 0, "reject specs above this total injection count (0 = unlimited)")
		quick     = flag.Bool("quick", false, "scaled-down default fault config for smoke testing")
		verbose   = flag.Bool("v", false, "debug-level logging (every job state transition)")
		version   = flag.Bool("version", false, "print build identity and exit")

		// Admission gate.
		rate  = flag.Float64("rate", 0, "admission gate: submissions per second before 429 (0 = unlimited)")
		burst = flag.Int("burst", 10, "admission gate burst size")

		// Cluster fabric (docs/CLUSTER.md).
		coordinator = flag.Bool("coordinator", false, "shard submitted campaigns across joined workers instead of running them locally")
		join        = flag.String("join", "", "worker mode: register with the coordinator at this address and execute leased ranges")
		advertise   = flag.String("advertise", "", "worker mode: base URL the coordinator dials back (default: derived from -addr)")
		route       = flag.String("route", "round-robin", "coordinator routing policy: "+strings.Join(cluster.PolicyNames(), ", "))
		leaseTTL    = flag.Duration("lease-ttl", cluster.DefaultLeaseTTL, "coordinator: re-lease a range after this much stream silence")
		rangeSize   = flag.Int("range-size", cluster.DefaultRangeSize, "coordinator: max injection descriptors per lease")
		slots       = flag.Int("slots", 2, "worker mode: shard leases executed concurrently")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Generator())
		return
	}
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}
	if *coordinator && *join != "" {
		fatal("-coordinator and -join are mutually exclusive")
	}

	opts := harness.DefaultOptions()
	if *quick {
		opts = harness.QuickOptions()
	}
	// One prepared-golden-state cache serves both the front door and
	// leased shards, so a cell warmed by either path is warm for both —
	// the locality the cache-aware routing policy advertises upstream.
	cache := fault.NewPreparedCache()
	cfg := server.Config{
		Root:          *data,
		Factory:       opts.CampaignFactory(),
		BaseFault:     opts.Fault,
		Jobs:          *jobs,
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxInjections: *maxInj,
		Log:           log,
		Prepared:      cache,
		Timing:        opts.TimingRunner(),
		RateLimit:     *rate,
		RateBurst:     *burst,
	}

	var (
		coord  *cluster.Coordinator
		worker *cluster.Worker
		joiner *cluster.Joiner
	)
	switch {
	case *coordinator:
		pol, err := cluster.PolicyByName(*route)
		if err != nil {
			fatal("bad -route", "err", err)
		}
		reg := cluster.NewRegistry(nil)
		coord = &cluster.Coordinator{
			Registry:  reg,
			Policy:    pol,
			LeaseTTL:  *leaseTTL,
			RangeSize: *rangeSize,
			Log:       log,
		}
		cfg.Role = "coordinator"
		cfg.Runner = coord.RunCampaign
		cfg.Ready = func() (bool, map[string]any) {
			n := reg.AliveCount()
			return n > 0, map[string]any{"workers_alive": n, "route": pol.Name()}
		}
	case *join != "":
		coordURL := baseURL(*join)
		self := *advertise
		if self == "" {
			self = selfURL(*addr)
		} else {
			self = baseURL(self)
		}
		worker = &cluster.Worker{Factory: opts.CampaignFactory(), Cache: cache, Slots: *slots, Log: log}
		joiner = &cluster.Joiner{Worker: worker, Coordinator: coordURL, ID: self, Addr: self, Log: log}
		cfg.Role = "worker"
		cfg.Ready = func() (bool, map[string]any) {
			j := worker.Joined()
			return j, map[string]any{"joined": j, "coordinator": coordURL}
		}
	}

	s, err := server.New(cfg)
	if err != nil {
		fatal("startup failed", "err", err)
	}
	if un := s.Unfinished(); len(un) > 0 {
		log.Info("resuming unfinished jobs", "count", len(un), "data", *data, "jobs", un)
	}
	s.Start()

	handler := s.Handler()
	switch {
	case coord != nil:
		coord.RegisterMetrics(s.Registry())
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/v1/cluster/", coord.Handler())
		handler = mux
		log.Info("coordinator mode", "route", *route, "lease_ttl", *leaseTTL, "range_size", *rangeSize)
	case worker != nil:
		worker.QueueDepth = func() int {
			n := 0
			for _, st := range s.Jobs() {
				if st.State == server.StateQueued {
					n++
				}
			}
			return n
		}
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/v1/cluster/", worker.Handler())
		handler = mux
		log.Info("worker mode", "coordinator", joiner.Coordinator, "advertise", joiner.Addr, "slots", *slots)
	}

	if *debugAddr != "" {
		// The pprof handlers registered by the blank import live on
		// http.DefaultServeMux; serve that mux on a separate, typically
		// loopback-only, address so profiling never rides the public API.
		go func() {
			log.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Error("pprof server failed", "err", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "data", *data, "runners", *jobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if joiner != nil {
		go joiner.Run(ctx)
	}
	select {
	case err := <-errCh:
		log.Error("http server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	log.Info("signal received; draining (in-flight campaigns journal and resume on next start)")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := s.Drain(shutdownCtx); err != nil {
		log.Warn("drain", "err", err)
	}
	if un := s.Unfinished(); len(un) > 0 {
		log.Info("jobs unfinished; restart fhserved to resume", "count", len(un), "data", *data, "jobs", un)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fhserved:", err)
		os.Exit(1)
	}
}

// baseURL normalizes "host:port" or a full URL into a dialable base.
func baseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// selfURL derives a worker's advertised URL from its listen address:
// wildcard hosts become localhost (single-machine default; use
// -advertise for anything a remote coordinator must dial).
func selfURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return baseURL(addr)
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "localhost"
	}
	return "http://" + net.JoinHostPort(host, port)
}
